//! Wall-clock benchmark of the sweep pipeline itself.
//!
//! ```text
//! cargo run --release -p atm-bench --bin bench
//! cargo run --release -p atm-bench --bin bench -- --quick --jobs 4
//! ```
//!
//! The figures/experiments pipeline is a *simulator*: its outputs are
//! modeled times, but producing them costs real host time. This binary
//! times the standard sweep (every paper platform × both tasks) through
//! six host configurations —
//!
//! | stage | scan | harness |
//! |---|---|---|
//! | `serial-naive`    | naive O(n²) scan        | 1 thread (the seed code path) |
//! | `serial-banded`   | altitude-banded         | 1 thread |
//! | `serial-grid`     | altitude bands × spatial grid | 1 thread |
//! | `parallel-naive`  | naive O(n²) scan        | `--jobs` threads |
//! | `parallel-banded` | altitude-banded         | `--jobs` threads |
//! | `parallel-grid`   | altitude bands × spatial grid | `--jobs` threads |
//!
//! — verifies that all six produce element-identical series (the
//! determinism contract: neither knob may change a single output value),
//! and writes `BENCH_sweep.json` with per-stage wall-clock times and
//! speedups over the `serial-naive` baseline.
//!
//! A second section times the sharded detect (`sharded-detect-1/2/4`
//! stages): one Tasks 2+3 execution per sweep point through
//! [`atm_core::detect_resolve_parallel`] at shard grid sides 1, 2 and 4
//! (shards=1 is the exact sequential code path), verifying that fleets,
//! stats and booked op totals are bit-identical across shard counts and
//! reporting the per-point wall-clock win.
//!
//! A third section times the **measured substrates** (`measured-*-detect`
//! stages): the deterministic [`TimingKind::Measured`] roster entries —
//! sequential reference, thread-pool multicore, SoA gate kernel — each run
//! one Tasks 2+3 execution per sweep point under their own stopwatch, and
//! their resolved fleets must be byte-identical. Every stage in the output
//! carries a `timing` tag ("measured" or "modeled") so the CI regression
//! gate can hold measured stages to the wall-clock budget while treating
//! the modeled sweep stages (whose wall time is simulator overhead, not a
//! guarded hot path) as report-only.
//!
//! A fourth section times the **incremental rescan engine**
//! (`incremental-detect-muP` stages, one per move rate): consecutive
//! rescans of one fleet in which a fraction μ of the aircraft drift
//! between cycles, run side by side through a per-cycle full-rebuild
//! serial-grid detect and a persistent [`IncrementalEngine`]. The two
//! paths must stay byte-identical every cycle; each stage reports both
//! wall-clocks, the speedup over the full rebuild, and the engine's
//! dirty-cell hit-rate counters (`cells_dirty`, `pairs_rescanned`,
//! `pairs_replayed`).
//!
//! A fifth section times the **scenario corpus** (`scenario-<slug>-detect`
//! stages, one per catalog traffic shape — see `atm_core::scenario`): each
//! scenario's fleet runs one Tasks 2+3 execution through the naive scan
//! and the grid fast path under wall-clock, with fleets, stats and booked
//! op totals byte-compared. These stages carry `"gate": true` — shaped
//! traffic (holding stacks, hotspot cells) is exactly where the fast-path
//! wall-clock could regress, so the CI regression gate holds them to the
//! budget explicitly.
//!
//! A sixth section times the **resumable engine** (`engine-step-muP`
//! stages): full major cycles through [`atm_core::AtmEngine`] on the
//! measured sequential host, with a fraction μ of the fleet re-positioned
//! between cycles through [`Airfield::apply_updates`] — the live-server
//! hot loop. Each stage steps an incremental-scan engine and a grid-scan
//! engine on the same ingest batches and requires identical fleet hashes,
//! conflict and resolution counts every cycle (the dirty-cell ingest
//! contract). Gated: this is the path the `atm-server` cycle loop runs.
//!
//! A seventh section times the **server ingest path** (`server-ingest`):
//! the in-process verb hot path — parse a line-delimited JSON ingest
//! batch, decode the updates, apply them to the airfield, produce a
//! receipt — without the socket. Gated likewise.
//!
//! An eighth section times the **process-shard wire transport**
//! (`proc-shard-detect-S` stages, DESIGN.md §15): the same per-point
//! detect executions, but with halo export/import and wave hand-off
//! crossing real localhost TCP through [`atm_core::SocketTransport`] to
//! S² `run_shard_worker` loops — the full frame-codec round trip of
//! `atm-server coordinator`, minus process spawn. Outputs must stay
//! bit-identical to the in-process shards=1 run; each stage reports its
//! wire overhead over the matching in-process sharded stage. Gated: this
//! is the hot path of the cross-process server mode.

use atm_bench::harness::Harness;
use atm_bench::series::Series;
use atm_bench::sweep::{sweep_roster_on, SweepConfig, Task};
use atm_core::backends::{PlatformId, Roster, RosterEntry, TimingKind};
use atm_core::detect::{detect_resolve_all, DetectStats, IncrementalEngine, ScanActivity};
use atm_core::types::Aircraft;
use atm_core::{
    detect_resolve_parallel, detect_resolve_via_transport, run_shard_worker, AircraftUpdate,
    Airfield, AtmConfig, AtmEngine, ScanMode, Scenario, SocketTransport,
};
use atm_server::proto::{updates_from_json, updates_to_json};
use sim_clock::{NullSink, OpCounter, SimRng};
use std::path::PathBuf;
use std::time::Instant;
use telemetry::{parse_json, JsonValue};

struct Options {
    out: PathBuf,
    quick: bool,
    jobs: Option<usize>,
}

fn value_of(args: &mut impl Iterator<Item = String>, flag: &str, what: &str) -> String {
    args.next().unwrap_or_else(|| {
        eprintln!("{flag} needs {what} (try --help)");
        std::process::exit(2);
    })
}

fn parse_args() -> Options {
    let mut opts = Options {
        out: PathBuf::from("results/BENCH_sweep.json"),
        quick: false,
        jobs: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => opts.out = PathBuf::from(value_of(&mut args, "--out", "a path")),
            "--quick" => opts.quick = true,
            "--jobs" => {
                let v = value_of(&mut args, "--jobs", "a worker count (>= 1)");
                opts.jobs = Some(v.parse().ok().filter(|&j| j >= 1).unwrap_or_else(|| {
                    eprintln!("--jobs needs a worker count (>= 1), got '{v}'");
                    std::process::exit(2);
                }));
            }
            "--help" | "-h" => {
                eprintln!("usage: bench [--quick] [--jobs N] [--out PATH]");
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument: {other} (try --help)");
                std::process::exit(2);
            }
        }
    }
    opts
}

/// One timed pass of the full sweep: every paper platform × both tasks.
fn run_stage(cfg: &SweepConfig, harness: &Harness) -> (f64, Vec<Vec<Series>>) {
    let roster = Roster::paper();
    let start = Instant::now();
    let series: Vec<Vec<Series>> = [Task::Track, Task::DetectResolve]
        .iter()
        .map(|&task| sweep_roster_on(&roster, task, cfg, harness))
        .collect();
    (start.elapsed().as_secs_f64() * 1_000.0, series)
}

/// One timed pass of the sharded detect: a single Tasks 2+3 execution per
/// sweep point (fresh seeded fleet, index build included — it is part of
/// the work sharding must amortize). Returns per-point wall times and the
/// full functional output per point for the cross-shard identity check.
#[allow(clippy::type_complexity)]
fn run_sharded_stage(
    base: &SweepConfig,
    shards: usize,
    workers: usize,
) -> (Vec<f64>, Vec<(Vec<Aircraft>, DetectStats, OpCounter)>) {
    let mut per_point_ms = Vec::new();
    let mut outputs = Vec::new();
    for &n in &base.ns {
        let cfg = AtmConfig {
            shards,
            scan: base.scan,
            ..AtmConfig::with_seed(base.seed)
        };
        let mut field = Airfield::new(n, cfg.clone());
        let start = Instant::now();
        let (stats, ops) = detect_resolve_parallel(&mut field.aircraft, &cfg, workers);
        per_point_ms.push(start.elapsed().as_secs_f64() * 1_000.0);
        outputs.push((field.aircraft, stats, ops));
    }
    (per_point_ms, outputs)
}

/// One timed pass of the process-shard wire transport: the same per-point
/// executions as [`run_sharded_stage`], but with the detect waves flowing
/// through [`SocketTransport`] to `side²` worker *threads* over real
/// localhost TCP — the full serialize → socket → import → simulate →
/// reply path of `atm-server coordinator`, minus process spawn. The
/// transport (and its worker links) is reused across sweep points, as a
/// long-lived coordinator would.
#[allow(clippy::type_complexity)]
fn run_proc_shard_stage(
    base: &SweepConfig,
    side: usize,
) -> (Vec<f64>, Vec<(Vec<Aircraft>, DetectStats, OpCounter)>) {
    use std::net::{TcpListener, TcpStream};
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind bench listener");
    let addr = listener.local_addr().expect("listener addr");
    let shard_count = side * side;
    let workers: Vec<_> = (0..shard_count)
        .map(|_| {
            std::thread::spawn(move || {
                run_shard_worker(TcpStream::connect(addr).expect("connect bench worker"))
            })
        })
        .collect();
    let mut transport =
        SocketTransport::accept_workers(&listener, shard_count).expect("accept bench workers");

    let mut per_point_ms = Vec::new();
    let mut outputs = Vec::new();
    for &n in &base.ns {
        let cfg = AtmConfig {
            shards: side,
            scan: base.scan,
            ..AtmConfig::with_seed(base.seed)
        };
        let mut field = Airfield::new(n, cfg.clone());
        let start = Instant::now();
        let (stats, ops) = detect_resolve_via_transport(&mut field.aircraft, &cfg, &mut transport)
            .expect("the bench wire transport cannot fault");
        per_point_ms.push(start.elapsed().as_secs_f64() * 1_000.0);
        outputs.push((field.aircraft, stats, ops));
    }
    drop(transport); // sends Shutdown to every worker
    for w in workers {
        w.join().expect("join bench worker").expect("worker exit");
    }
    (per_point_ms, outputs)
}

/// One timed pass of a measured substrate's detect: a fresh backend and
/// seeded fleet per sweep point, with the backend's own
/// [`TimingKind::Measured`] stopwatch as the per-point time. Returns the
/// per-point wall times and the resolved fleets for the cross-substrate
/// identity check.
fn run_measured_stage(base: &SweepConfig, entry: &RosterEntry) -> (Vec<f64>, Vec<Vec<Aircraft>>) {
    let mut per_point_ms = Vec::new();
    let mut fleets = Vec::new();
    for &n in &base.ns {
        let cfg = AtmConfig {
            scan: base.scan,
            ..AtmConfig::with_seed(base.seed)
        };
        let mut field = Airfield::new(n, cfg.clone());
        let mut backend = entry.instantiate();
        let d = backend.detect_resolve(&mut field.aircraft, &cfg);
        per_point_ms.push(d.as_millis_f64());
        fleets.push(field.aircraft);
    }
    (per_point_ms, fleets)
}

/// Outcome of one incremental-vs-full-rebuild stage at one move rate.
struct IncrementalStage {
    /// Total wall-clock of the per-cycle full-rebuild serial-grid detects.
    serial_ms: f64,
    /// Total wall-clock of the persistent incremental engine's rescans.
    inc_ms: f64,
    /// Engine counters accumulated over every cycle.
    activity: ScanActivity,
    /// Whether both paths stayed byte-identical (fleet and stats) on
    /// every cycle.
    identical: bool,
}

/// One timed pass of the incremental rescan engine at move rate `mu`:
/// `cycles` consecutive rescans of one fleet, with `mu * n` randomly
/// chosen aircraft drifting between cycles (the same displacements
/// applied to both copies), comparing a per-cycle full-rebuild
/// serial-grid detect against one persistent [`IncrementalEngine`].
///
/// Runs at the sweep's *midpoint* n, not its largest: the engine's win
/// comes from replaying clear first scans, and at the densest sweep
/// point nearly the whole fleet is in active conflict (flagged aircraft
/// always rescan live, and their velocity commits keep dirtying cells),
/// so the densest point measures the floor, not the mechanism.
fn run_incremental_stage(base: &SweepConfig, n: usize, mu: f64, cycles: usize) -> IncrementalStage {
    let grid_cfg = AtmConfig {
        scan: ScanMode::Grid,
        ..AtmConfig::with_seed(base.seed)
    };
    let inc_cfg = AtmConfig {
        scan: ScanMode::Incremental,
        ..grid_cfg.clone()
    };
    let field = Airfield::new(n, grid_cfg.clone());
    let mut fleet_full = field.aircraft.clone();
    let mut fleet_inc = field.aircraft;
    let mut engine = IncrementalEngine::new();
    let mut rng = SimRng::seed_from_u64(base.seed ^ 0x5EED);
    let moved_per_cycle = (mu * n as f64).round() as usize;

    let mut out = IncrementalStage {
        serial_ms: 0.0,
        inc_ms: 0.0,
        activity: ScanActivity::default(),
        identical: true,
    };
    for _ in 0..cycles {
        let start = Instant::now();
        let full_stats = detect_resolve_all(&mut fleet_full, &grid_cfg, &mut NullSink);
        out.serial_ms += start.elapsed().as_secs_f64() * 1_000.0;

        let start = Instant::now();
        let inc_stats = engine.detect_resolve(&mut fleet_inc, &inc_cfg, &mut NullSink);
        out.inc_ms += start.elapsed().as_secs_f64() * 1_000.0;

        out.identical &= fleet_full == fleet_inc && full_stats == inc_stats;

        // Drift: identical displacements applied to both copies.
        for _ in 0..moved_per_cycle {
            let j = (rng.next_u64() % n as u64) as usize;
            let dx = rng.range_f32_inclusive(-8.0, 8.0);
            let dy = rng.range_f32_inclusive(-8.0, 8.0);
            fleet_full[j].x += dx;
            fleet_full[j].y += dy;
            fleet_inc[j].x += dx;
            fleet_inc[j].y += dy;
        }
    }
    out.activity = *engine.total_activity();
    out
}

/// Outcome of one resumable-engine stepping stage at one ingest rate.
struct EngineStepStage {
    /// Total wall-clock of the incremental-scan engine's major cycles.
    inc_ms: f64,
    /// Total wall-clock of the grid-scan engine's major cycles.
    grid_ms: f64,
    /// Conflicts observed over the run (from the incremental engine).
    conflicts: u64,
    /// Whether both engines agreed on fleet hash, conflicts and
    /// resolutions every cycle.
    identical: bool,
}

/// One timed pass of the resumable engine at ingest rate `mu`: `cycles`
/// major cycles through two [`AtmEngine`]s on the measured sequential
/// host — one incremental scan, one grid scan — with `mu * n` aircraft
/// re-positioned via [`Airfield::apply_updates`] before every cycle (the
/// same batches fed to both). External ingest mutates aircraft behind the
/// incremental engine's back, so cross-checking against the full grid
/// rebuild exercises exactly the dirty-cell bookkeeping the live server
/// relies on.
fn run_engine_step_stage(seed: u64, n: usize, mu: f64, cycles: usize) -> EngineStepStage {
    let mk = |scan: ScanMode| {
        let cfg = AtmConfig {
            scan,
            ..AtmConfig::with_seed(seed)
        };
        let entry = Roster::select([PlatformId::SequentialHost]);
        let mut engine = AtmEngine::new(Airfield::new(n, cfg), entry.entries()[0].instantiate());
        engine.begin_run();
        engine
    };
    let mut inc = mk(ScanMode::Incremental);
    let mut grid = mk(ScanMode::Grid);
    let mut rng = SimRng::seed_from_u64(seed ^ 0x16E57);
    let moved = (mu * n as f64).round() as usize;

    let mut out = EngineStepStage {
        inc_ms: 0.0,
        grid_ms: 0.0,
        conflicts: 0,
        identical: true,
    };
    for _ in 0..cycles {
        let updates: Vec<AircraftUpdate> = (0..moved)
            .map(|_| {
                let j = (rng.next_u64() % n as u64) as usize;
                let a = &grid.aircraft()[j];
                AircraftUpdate {
                    id: j as u32,
                    x: a.x + rng.range_f32_inclusive(-8.0, 8.0),
                    y: a.y + rng.range_f32_inclusive(-8.0, 8.0),
                    alt: a.alt + rng.range_f32_inclusive(-500.0, 500.0),
                    dx: rng.range_f32_inclusive(-0.05, 0.05),
                    dy: rng.range_f32_inclusive(-0.05, 0.05),
                }
            })
            .collect();
        inc.apply_updates(&updates);
        grid.apply_updates(&updates);

        let start = Instant::now();
        let ri = inc.step_major_cycle();
        out.inc_ms += start.elapsed().as_secs_f64() * 1_000.0;

        let start = Instant::now();
        let rg = grid.step_major_cycle();
        out.grid_ms += start.elapsed().as_secs_f64() * 1_000.0;

        out.conflicts += ri.conflicts;
        out.identical &= ri.fleet_hash == rg.fleet_hash
            && ri.conflicts == rg.conflicts
            && ri.resolutions == rg.resolutions;
    }
    out
}

/// One timed pass of the server ingest hot path: `batches` pre-rendered
/// line-delimited JSON ingest batches of `batch` updates each are parsed,
/// decoded and applied to one airfield — the per-verb work `atm-server`
/// does between socket reads. Returns (wall ms, updates applied).
fn run_server_ingest_stage(seed: u64, n: usize, batch: usize, batches: usize) -> (f64, u64) {
    let mut field = Airfield::new(n, AtmConfig::with_seed(seed));
    let mut rng = SimRng::seed_from_u64(seed ^ 0x53_7265);
    let lines: Vec<String> = (0..batches)
        .map(|_| {
            let updates: Vec<AircraftUpdate> = (0..batch)
                .map(|_| AircraftUpdate {
                    id: (rng.next_u64() % n as u64) as u32,
                    x: rng.range_f32_inclusive(-400.0, 400.0),
                    y: rng.range_f32_inclusive(-400.0, 400.0),
                    alt: rng.range_f32_inclusive(5_000.0, 35_000.0),
                    dx: rng.range_f32_inclusive(-0.05, 0.05),
                    dy: rng.range_f32_inclusive(-0.05, 0.05),
                })
                .collect();
            updates_to_json(&updates).to_compact()
        })
        .collect();

    let start = Instant::now();
    let mut applied = 0u64;
    for line in &lines {
        let v = parse_json(line).expect("bench-rendered batch parses");
        let updates = updates_from_json(&v).expect("bench-rendered batch decodes");
        applied += u64::from(field.apply_updates(&updates).applied);
    }
    (start.elapsed().as_secs_f64() * 1_000.0, applied)
}

fn main() {
    let opts = parse_args();
    let harness = match opts.jobs {
        Some(jobs) => Harness::new(jobs),
        None => Harness::default_parallel(),
    };
    let base = if opts.quick {
        SweepConfig::quick()
    } else {
        SweepConfig::standard()
    };
    println!(
        "bench: n = {:?}, seed = {}, reps = {}, jobs = {}",
        base.ns,
        base.seed,
        base.reps,
        harness.jobs()
    );

    let stages: [(&str, ScanMode, &Harness); 6] = [
        ("serial-naive", ScanMode::Naive, &Harness::serial()),
        ("serial-banded", ScanMode::Banded, &Harness::serial()),
        ("serial-grid", ScanMode::Grid, &Harness::serial()),
        ("parallel-naive", ScanMode::Naive, &harness),
        ("parallel-banded", ScanMode::Banded, &harness),
        ("parallel-grid", ScanMode::Grid, &harness),
    ];

    let mut wall_ms = Vec::new();
    let mut results: Vec<Vec<Vec<Series>>> = Vec::new();
    for (id, scan, h) in &stages {
        let cfg = SweepConfig {
            scan: *scan,
            ..base.clone()
        };
        let (ms, series) = run_stage(&cfg, h);
        println!("  {id:<16} {ms:>10.1} ms");
        wall_ms.push(ms);
        results.push(series);
    }

    // Sharded detect: one execution per sweep point, shards=1 is the exact
    // sequential path, shards>1 fans waves across the harness's workers.
    let shard_sides = [1usize, 2, 4];
    println!(
        "  sharded detect ({} workers at shards > 1):",
        harness.jobs()
    );
    let mut sharded_ms: Vec<Vec<f64>> = Vec::new();
    let mut sharded_out = Vec::new();
    for &shards in &shard_sides {
        let workers = if shards > 1 { harness.jobs() } else { 1 };
        let (per_point, out) = run_sharded_stage(&base, shards, workers);
        let total: f64 = per_point.iter().sum();
        println!(
            "  sharded-detect-{shards} {total:>10.1} ms  (per point: {})",
            per_point
                .iter()
                .zip(&base.ns)
                .map(|(ms, n)| format!("n={n} {ms:.1}"))
                .collect::<Vec<_>>()
                .join(", ")
        );
        sharded_ms.push(per_point);
        sharded_out.push(out);
    }
    let sharded_identical = sharded_out.iter().all(|o| *o == sharded_out[0]);
    if !sharded_identical {
        eprintln!("RESULT MISMATCH: a sharded stage diverged from shards=1");
    }
    let largest_speedup = sharded_ms[0].last().copied().unwrap_or(0.0)
        / sharded_ms[2].last().copied().unwrap_or(1.0).max(1e-9);
    println!(
        "  shards=4 speedup over shards=1 at n={}: {largest_speedup:.2}x",
        base.ns.last().copied().unwrap_or(0)
    );

    // Measured substrates: the deterministic TimingKind::Measured roster
    // entries run the real detect kernel per sweep point, each under its
    // own stopwatch. The MIMD host backend is deliberately absent (its
    // radar races are honest non-determinism); these three must produce
    // byte-identical fleets, differing only in wall-clock.
    let measured_roster = Roster::select([
        PlatformId::SequentialHost,
        PlatformId::MulticoreHost,
        PlatformId::SimdSoaHost,
    ]);
    println!("  measured substrates (one detect per sweep point):");
    let mut measured_ids = Vec::new();
    let mut measured_ms: Vec<Vec<f64>> = Vec::new();
    let mut measured_fleets = Vec::new();
    for entry in measured_roster.entries() {
        assert_eq!(entry.timing, TimingKind::Measured);
        let (per_point, fleets) = run_measured_stage(&base, entry);
        let total: f64 = per_point.iter().sum();
        let id = format!("measured-{}-detect", entry.slug);
        println!("  {id:<32} {total:>10.1} ms");
        measured_ids.push(id);
        measured_ms.push(per_point);
        measured_fleets.push(fleets);
    }
    let measured_identical = measured_fleets.iter().all(|f| *f == measured_fleets[0]);
    if !measured_identical {
        eprintln!("RESULT MISMATCH: a measured substrate diverged from the sequential reference");
    }
    let seq_total: f64 = measured_ms[0].iter().sum();
    let multicore_speedup = seq_total / measured_ms[1].iter().sum::<f64>().max(1e-9);
    println!("  multicore speedup over sequential-host: {multicore_speedup:.2}x");

    // Incremental rescan engine: consecutive rescans at a range of
    // per-cycle move rates, persistent engine vs per-cycle full rebuild.
    let move_rates = [0.0, 0.01, 0.05, 0.20, 1.0];
    let inc_cycles = if opts.quick { 8 } else { 16 };
    let inc_n = base.ns.get(base.ns.len() / 2).copied().unwrap_or(1_000);
    println!("  incremental rescans ({inc_cycles} cycles at n={inc_n}, vs serial-grid rebuild):");
    let mut incremental_stages = Vec::new();
    let mut incremental_identical = true;
    let mut low_move_speedup = 0.0_f64;
    for &mu in &move_rates {
        let stage = run_incremental_stage(&base, inc_n, mu, inc_cycles);
        let speedup = stage.serial_ms / stage.inc_ms.max(1e-9);
        let replayed_share = stage.activity.pairs_replayed as f64
            / (stage.activity.pairs_replayed + stage.activity.pairs_rescanned).max(1) as f64;
        println!(
            "  incremental-detect-mu{:<4} {:>10.1} ms vs {:>10.1} ms serial-grid \
             ({speedup:.2}x, {:.0}% of pairs replayed)",
            (mu * 100.0).round() as u64,
            stage.inc_ms,
            stage.serial_ms,
            replayed_share * 100.0
        );
        incremental_identical &= stage.identical;
        if mu <= 0.05 {
            low_move_speedup = low_move_speedup.max(speedup);
        }
        incremental_stages.push((mu, stage, speedup));
    }
    if !incremental_identical {
        eprintln!("RESULT MISMATCH: the incremental engine diverged from the grid full rebuild");
    }
    println!("  best incremental speedup at move rate <= 5%: {low_move_speedup:.2}x");

    // Scenario corpus: every catalog traffic shape at one fleet size, the
    // naive scan vs the grid fast path under wall-clock, with fleets,
    // stats and booked op totals byte-compared. Shaped traffic is where
    // the fast paths could plausibly diverge (dense stacks, hotspot
    // cells), so each scenario is its own gated stage.
    let scn_n = if opts.quick { 500 } else { 1_200 };
    println!("  scenario corpus (grid vs naive detect at n={scn_n}):");
    let mut scenario_stages = Vec::new();
    let mut scenarios_identical = true;
    for scn in Scenario::catalog() {
        let naive_cfg = scn.apply(AtmConfig {
            scan: ScanMode::Naive,
            ..AtmConfig::with_seed(base.seed)
        });
        let grid_cfg = AtmConfig {
            scan: ScanMode::Grid,
            ..naive_cfg.clone()
        };
        let fleet0 = scn.fleet(scn_n, base.seed);

        let mut naive_fleet = fleet0.clone();
        let mut naive_ops = OpCounter::new();
        let start = Instant::now();
        let naive_stats = detect_resolve_all(&mut naive_fleet, &naive_cfg, &mut naive_ops);
        let naive_ms = start.elapsed().as_secs_f64() * 1_000.0;

        let mut grid_fleet = fleet0;
        let mut grid_ops = OpCounter::new();
        let start = Instant::now();
        let grid_stats = detect_resolve_all(&mut grid_fleet, &grid_cfg, &mut grid_ops);
        let grid_ms = start.elapsed().as_secs_f64() * 1_000.0;

        let same = naive_fleet == grid_fleet && naive_stats == grid_stats && naive_ops == grid_ops;
        if !same {
            eprintln!(
                "RESULT MISMATCH: scenario '{}' grid scan diverged from naive",
                scn.slug()
            );
        }
        scenarios_identical &= same;
        let speedup = naive_ms / grid_ms.max(1e-9);
        println!(
            "  scenario-{:<22} {grid_ms:>10.1} ms grid vs {naive_ms:>10.1} ms naive \
             ({speedup:.2}x, {} critical)",
            format!("{}-detect", scn.slug()),
            grid_stats.critical_conflicts
        );
        scenario_stages.push((scn, grid_ms, naive_ms, speedup, grid_stats));
    }

    // Resumable engine: full major cycles with live ingest between them —
    // the atm-server cycle loop without the socket. Incremental and grid
    // scans must agree on every cycle's fleet hash and conflict counts.
    let engine_rates = [0.01, 0.20];
    let engine_n = if opts.quick { 400 } else { 800 };
    let engine_cycles = if opts.quick { 2 } else { 4 };
    println!(
        "  resumable engine ({engine_cycles} major cycles at n={engine_n}, incremental vs grid):"
    );
    let mut engine_stages = Vec::new();
    let mut engine_identical = true;
    for &mu in &engine_rates {
        let stage = run_engine_step_stage(base.seed, engine_n, mu, engine_cycles);
        let speedup = stage.grid_ms / stage.inc_ms.max(1e-9);
        println!(
            "  engine-step-mu{:<4} {:>10.1} ms vs {:>10.1} ms grid-scan engine \
             ({speedup:.2}x, {} conflicts)",
            (mu * 100.0).round() as u64,
            stage.inc_ms,
            stage.grid_ms,
            stage.conflicts
        );
        engine_identical &= stage.identical;
        engine_stages.push((mu, stage, speedup));
    }
    if !engine_identical {
        eprintln!("RESULT MISMATCH: ingest-fed incremental engine diverged from the grid engine");
    }

    // Server ingest path: parse + decode + apply, no socket.
    let (ingest_batch, ingest_batches) = if opts.quick { (64, 200) } else { (64, 1_000) };
    let (ingest_ms, ingest_applied) =
        run_server_ingest_stage(base.seed, engine_n, ingest_batch, ingest_batches);
    let ingest_rate = ingest_applied as f64 / (ingest_ms / 1_000.0).max(1e-9);
    println!(
        "  server-ingest      {ingest_ms:>10.1} ms  ({ingest_applied} updates, {:.0}k updates/s)",
        ingest_rate / 1_000.0
    );

    // Process-shard wire transport: halo waves over real localhost TCP to
    // worker threads running the same loop as `atm-server shard-worker`.
    // Outputs must match the in-process shards=1 run byte for byte; the
    // interesting number is the wire overhead over the matching in-process
    // sharded stage.
    let proc_sides = [1usize, 2];
    println!("  proc-shard detect (wire transport over localhost TCP):");
    let mut proc_ms: Vec<Vec<f64>> = Vec::new();
    let mut proc_identical = true;
    for (i, &side) in proc_sides.iter().enumerate() {
        let (per_point, out) = run_proc_shard_stage(&base, side);
        let total: f64 = per_point.iter().sum();
        let in_proc: f64 = sharded_ms[i].iter().sum();
        println!(
            "  proc-shard-detect-{side} {total:>10.1} ms  \
             ({:.2}x the in-process sharded-detect-{side} time, {} workers)",
            total / in_proc.max(1e-9),
            side * side
        );
        proc_identical &= out == sharded_out[0];
        proc_ms.push(per_point);
    }
    if !proc_identical {
        eprintln!("RESULT MISMATCH: the wire transport diverged from the in-process detect");
    }

    // Determinism contract: every stage's series must be element-identical
    // to the baseline's.
    let identical = results.iter().all(|r| *r == results[0])
        && sharded_identical
        && measured_identical
        && incremental_identical
        && scenarios_identical
        && engine_identical
        && proc_identical;
    if !identical {
        eprintln!("RESULT MISMATCH: a stage diverged from the serial-naive baseline");
    }
    let baseline_ms = wall_ms[0];
    let headline = baseline_ms / wall_ms[5].max(1e-9);
    let grid_vs_banded = wall_ms[4] / wall_ms[5].max(1e-9);
    println!(
        "  identical results: {identical}; parallel-grid speedup over serial-naive: {headline:.2}x \
         (over parallel-banded: {grid_vs_banded:.2}x)"
    );

    let mut stage_json: Vec<JsonValue> = stages
        .iter()
        .zip(&wall_ms)
        .map(|((id, scan, h), &ms)| {
            JsonValue::obj()
                .set("id", *id)
                .set("timing", "modeled")
                .set("scan", format!("{scan:?}").to_lowercase())
                .set("jobs", h.jobs())
                .set("wall_ms", ms)
                .set("speedup_vs_serial_naive", baseline_ms / ms.max(1e-9))
        })
        .collect();
    for (i, &shards) in shard_sides.iter().enumerate() {
        let total: f64 = sharded_ms[i].iter().sum();
        stage_json.push(
            JsonValue::obj()
                .set("id", format!("sharded-detect-{shards}"))
                .set("timing", "measured")
                .set("scan", format!("{:?}", base.scan).to_lowercase())
                .set("shards", shards)
                .set("jobs", if shards > 1 { harness.jobs() } else { 1 })
                .set("wall_ms", total)
                .set("point_wall_ms", sharded_ms[i].clone())
                .set(
                    "speedup_vs_shards1",
                    sharded_ms[0].iter().sum::<f64>() / total.max(1e-9),
                ),
        );
    }
    for (i, id) in measured_ids.iter().enumerate() {
        let total: f64 = measured_ms[i].iter().sum();
        stage_json.push(
            JsonValue::obj()
                .set("id", id.as_str())
                .set("timing", "measured")
                .set("scan", format!("{:?}", base.scan).to_lowercase())
                .set("wall_ms", total)
                .set("point_wall_ms", measured_ms[i].clone())
                .set("speedup_vs_sequential_host", seq_total / total.max(1e-9)),
        );
    }
    for (mu, stage, speedup) in &incremental_stages {
        stage_json.push(
            JsonValue::obj()
                .set(
                    "id",
                    format!("incremental-detect-mu{}", (mu * 100.0).round() as u64),
                )
                .set("timing", "measured")
                .set("scan", "incremental")
                .set("move_rate", *mu)
                .set("cycles", inc_cycles)
                .set("n", inc_n)
                .set("wall_ms", stage.inc_ms)
                .set("serial_grid_wall_ms", stage.serial_ms)
                .set("speedup_vs_serial_grid", *speedup)
                .set("cells_dirty", stage.activity.cells_dirty)
                .set("pairs_rescanned", stage.activity.pairs_rescanned)
                .set("pairs_replayed", stage.activity.pairs_replayed)
                .set("scans_live", stage.activity.scans_live)
                .set("scans_replayed", stage.activity.scans_replayed),
        );
    }
    for (scn, grid_ms, naive_ms, speedup, stats) in &scenario_stages {
        stage_json.push(
            JsonValue::obj()
                .set("id", format!("scenario-{}-detect", scn.slug()))
                .set("timing", "measured")
                .set("gate", true)
                .set("scan", "grid")
                .set("n", scn_n)
                .set("wall_ms", *grid_ms)
                .set("naive_wall_ms", *naive_ms)
                .set("speedup_grid_vs_naive", *speedup)
                .set("critical_conflicts", stats.critical_conflicts),
        );
    }
    for (mu, stage, speedup) in &engine_stages {
        stage_json.push(
            JsonValue::obj()
                .set(
                    "id",
                    format!("engine-step-mu{}", (mu * 100.0).round() as u64),
                )
                .set("timing", "measured")
                .set("gate", true)
                .set("scan", "incremental")
                .set("ingest_rate", *mu)
                .set("cycles", engine_cycles)
                .set("n", engine_n)
                .set("wall_ms", stage.inc_ms)
                .set("grid_engine_wall_ms", stage.grid_ms)
                .set("speedup_vs_grid_engine", *speedup)
                .set("conflicts", stage.conflicts),
        );
    }
    for (i, &side) in proc_sides.iter().enumerate() {
        let total: f64 = proc_ms[i].iter().sum();
        let in_proc: f64 = sharded_ms[i].iter().sum();
        stage_json.push(
            JsonValue::obj()
                .set("id", format!("proc-shard-detect-{side}"))
                .set("timing", "measured")
                .set("gate", true)
                .set("scan", format!("{:?}", base.scan).to_lowercase())
                .set("shards", side)
                .set("workers", side * side)
                .set("wall_ms", total)
                .set("point_wall_ms", proc_ms[i].clone())
                .set("overhead_vs_in_process", total / in_proc.max(1e-9)),
        );
    }
    stage_json.push(
        JsonValue::obj()
            .set("id", "server-ingest")
            .set("timing", "measured")
            .set("gate", true)
            .set("n", engine_n)
            .set("batch", ingest_batch)
            .set("batches", ingest_batches)
            .set("wall_ms", ingest_ms)
            .set("updates_applied", ingest_applied)
            .set("updates_per_sec", ingest_rate),
    );
    let json = JsonValue::obj()
        .set(
            "sweep",
            JsonValue::obj()
                .set("ns", base.ns.clone())
                .set("seed", base.seed)
                .set("reps", base.reps),
        )
        .set("jobs", harness.jobs())
        .set("stages", JsonValue::Arr(stage_json))
        .set("identical_results", identical)
        .set("speedup_parallel_grid_vs_serial_naive", headline)
        .set("speedup_parallel_grid_vs_parallel_banded", grid_vs_banded)
        .set("speedup_shards4_vs_shards1_largest_n", largest_speedup)
        .set("speedup_multicore_vs_sequential_host", multicore_speedup)
        .set(
            "speedup_incremental_low_move_vs_serial_grid",
            low_move_speedup,
        );

    if let Some(dir) = opts.out.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).unwrap_or_else(|e| {
                eprintln!("cannot create {}: {e}", dir.display());
                std::process::exit(1);
            });
        }
    }
    std::fs::write(&opts.out, json.to_pretty()).unwrap_or_else(|e| {
        eprintln!("cannot write {}: {e}", opts.out.display());
        std::process::exit(1);
    });
    println!("  (written to {})", opts.out.display());

    if !identical {
        std::process::exit(1);
    }
}
