//! Wall-clock benchmark of the sweep pipeline itself.
//!
//! ```text
//! cargo run --release -p atm-bench --bin bench
//! cargo run --release -p atm-bench --bin bench -- --quick --jobs 4
//! ```
//!
//! The figures/experiments pipeline is a *simulator*: its outputs are
//! modeled times, but producing them costs real host time. This binary
//! times the standard sweep (every paper platform × both tasks) through
//! six host configurations —
//!
//! | stage | scan | harness |
//! |---|---|---|
//! | `serial-naive`    | naive O(n²) scan        | 1 thread (the seed code path) |
//! | `serial-banded`   | altitude-banded         | 1 thread |
//! | `serial-grid`     | altitude bands × spatial grid | 1 thread |
//! | `parallel-naive`  | naive O(n²) scan        | `--jobs` threads |
//! | `parallel-banded` | altitude-banded         | `--jobs` threads |
//! | `parallel-grid`   | altitude bands × spatial grid | `--jobs` threads |
//!
//! — verifies that all six produce element-identical series (the
//! determinism contract: neither knob may change a single output value),
//! and writes `BENCH_sweep.json` with per-stage wall-clock times and
//! speedups over the `serial-naive` baseline.

use atm_bench::harness::Harness;
use atm_bench::series::Series;
use atm_bench::sweep::{sweep_roster_on, SweepConfig, Task};
use atm_core::backends::Roster;
use atm_core::ScanMode;
use std::path::PathBuf;
use std::time::Instant;
use telemetry::JsonValue;

struct Options {
    out: PathBuf,
    quick: bool,
    jobs: Option<usize>,
}

fn value_of(args: &mut impl Iterator<Item = String>, flag: &str, what: &str) -> String {
    args.next().unwrap_or_else(|| {
        eprintln!("{flag} needs {what} (try --help)");
        std::process::exit(2);
    })
}

fn parse_args() -> Options {
    let mut opts = Options {
        out: PathBuf::from("results/BENCH_sweep.json"),
        quick: false,
        jobs: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => opts.out = PathBuf::from(value_of(&mut args, "--out", "a path")),
            "--quick" => opts.quick = true,
            "--jobs" => {
                let v = value_of(&mut args, "--jobs", "a worker count (>= 1)");
                opts.jobs = Some(v.parse().ok().filter(|&j| j >= 1).unwrap_or_else(|| {
                    eprintln!("--jobs needs a worker count (>= 1), got '{v}'");
                    std::process::exit(2);
                }));
            }
            "--help" | "-h" => {
                eprintln!("usage: bench [--quick] [--jobs N] [--out PATH]");
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument: {other} (try --help)");
                std::process::exit(2);
            }
        }
    }
    opts
}

/// One timed pass of the full sweep: every paper platform × both tasks.
fn run_stage(cfg: &SweepConfig, harness: &Harness) -> (f64, Vec<Vec<Series>>) {
    let roster = Roster::paper();
    let start = Instant::now();
    let series: Vec<Vec<Series>> = [Task::Track, Task::DetectResolve]
        .iter()
        .map(|&task| sweep_roster_on(&roster, task, cfg, harness))
        .collect();
    (start.elapsed().as_secs_f64() * 1_000.0, series)
}

fn main() {
    let opts = parse_args();
    let harness = match opts.jobs {
        Some(jobs) => Harness::new(jobs),
        None => Harness::default_parallel(),
    };
    let base = if opts.quick {
        SweepConfig::quick()
    } else {
        SweepConfig::standard()
    };
    println!(
        "bench: n = {:?}, seed = {}, reps = {}, jobs = {}",
        base.ns,
        base.seed,
        base.reps,
        harness.jobs()
    );

    let stages: [(&str, ScanMode, &Harness); 6] = [
        ("serial-naive", ScanMode::Naive, &Harness::serial()),
        ("serial-banded", ScanMode::Banded, &Harness::serial()),
        ("serial-grid", ScanMode::Grid, &Harness::serial()),
        ("parallel-naive", ScanMode::Naive, &harness),
        ("parallel-banded", ScanMode::Banded, &harness),
        ("parallel-grid", ScanMode::Grid, &harness),
    ];

    let mut wall_ms = Vec::new();
    let mut results: Vec<Vec<Vec<Series>>> = Vec::new();
    for (id, scan, h) in &stages {
        let cfg = SweepConfig {
            scan: *scan,
            ..base.clone()
        };
        let (ms, series) = run_stage(&cfg, h);
        println!("  {id:<16} {ms:>10.1} ms");
        wall_ms.push(ms);
        results.push(series);
    }

    // Determinism contract: every stage's series must be element-identical
    // to the baseline's.
    let identical = results.iter().all(|r| *r == results[0]);
    if !identical {
        eprintln!("RESULT MISMATCH: a stage diverged from the serial-naive baseline");
    }
    let baseline_ms = wall_ms[0];
    let headline = baseline_ms / wall_ms[5].max(1e-9);
    let grid_vs_banded = wall_ms[4] / wall_ms[5].max(1e-9);
    println!(
        "  identical results: {identical}; parallel-grid speedup over serial-naive: {headline:.2}x \
         (over parallel-banded: {grid_vs_banded:.2}x)"
    );

    let stage_json: Vec<JsonValue> = stages
        .iter()
        .zip(&wall_ms)
        .map(|((id, scan, h), &ms)| {
            JsonValue::obj()
                .set("id", *id)
                .set("scan", format!("{scan:?}").to_lowercase())
                .set("jobs", h.jobs())
                .set("wall_ms", ms)
                .set("speedup_vs_serial_naive", baseline_ms / ms.max(1e-9))
        })
        .collect();
    let json = JsonValue::obj()
        .set(
            "sweep",
            JsonValue::obj()
                .set("ns", base.ns.clone())
                .set("seed", base.seed)
                .set("reps", base.reps),
        )
        .set("jobs", harness.jobs())
        .set("stages", JsonValue::Arr(stage_json))
        .set("identical_results", identical)
        .set("speedup_parallel_grid_vs_serial_naive", headline)
        .set("speedup_parallel_grid_vs_parallel_banded", grid_vs_banded);

    if let Some(dir) = opts.out.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).unwrap_or_else(|e| {
                eprintln!("cannot create {}: {e}", dir.display());
                std::process::exit(1);
            });
        }
    }
    std::fs::write(&opts.out, json.to_pretty()).unwrap_or_else(|e| {
        eprintln!("cannot write {}: {e}", opts.out.display());
        std::process::exit(1);
    });
    println!("  (written to {})", opts.out.display());

    if !identical {
        std::process::exit(1);
    }
}
