//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! Each ablation contrasts the paper's design decision with its obvious
//! alternative on the *modeled* clock of the relevant architecture, so the
//! output quantifies why the paper's choice matters:
//!
//! * [`fused_kernel`] — the fused `CheckCollisionPath` kernel vs. split
//!   detect/resolve kernels with a host round-trip (§4: "it cuts overhead
//!   for memory and data transfer").
//! * [`block_size`] — the paper's 96-threads-per-block vs. alternatives.
//! * [`expanding_box`] — Task 1's three expanding-box passes vs. a single
//!   wide-box pass (correlation quality vs. time).
//! * [`pe_virtualization`] — STARAN-style one-PE-per-record vs. the
//!   CSX600's `ceil(n/192)` virtualized passes.
//! * [`locking`] — the modeled Xeon's lock-per-record cost vs. a
//!   hypothetical lock-free variant (how much of the MIMD collapse is
//!   synchronization).

use crate::harness::Harness;
use atm_core::backends::{ApBackend, AtmBackend, GpuBackend};
use atm_core::track::track_correlate;
use atm_core::{Airfield, AtmConfig};
use gpu_sim::DeviceSpec;
use multicore::{WorkEstimate, XeonModel};
use sim_clock::OpCounter;
use std::path::Path;
use telemetry::{parse_json, JsonValue};

/// One ablation contrast: the paper's choice vs. the alternative.
#[derive(Clone, Debug)]
pub struct Ablation {
    /// Ablation id (kebab-case).
    pub id: String,
    /// What is being contrasted.
    pub description: String,
    /// Modeled time of the paper's design, ms.
    pub paper_ms: f64,
    /// Modeled time of the alternative, ms.
    pub alternative_ms: f64,
    /// Additional observations.
    pub notes: Vec<String>,
}

impl Ablation {
    /// Speedup of the paper's choice over the alternative.
    pub fn speedup(&self) -> f64 {
        self.alternative_ms / self.paper_ms.max(1e-12)
    }

    /// The ablation as a JSON object.
    pub fn to_json_value(&self) -> JsonValue {
        JsonValue::obj()
            .set("id", self.id.as_str())
            .set("description", self.description.as_str())
            .set("paper_ms", self.paper_ms)
            .set("alternative_ms", self.alternative_ms)
            .set("speedup", self.speedup())
            .set(
                "notes",
                JsonValue::Arr(
                    self.notes
                        .iter()
                        .map(|n| JsonValue::Str(n.clone()))
                        .collect(),
                ),
            )
    }
}

fn field(n: usize, seed: u64) -> (Airfield, AtmConfig) {
    let field = Airfield::new(n, AtmConfig::with_seed(seed));
    let cfg = field.config().clone();
    (field, cfg)
}

/// Fused `CheckCollisionPath` vs. split kernels + host round-trip, on the
/// Titan X.
pub fn fused_kernel(n: usize, seed: u64) -> Ablation {
    let (f, cfg) = field(n, seed);

    let mut fused = GpuBackend::titan_x_pascal();
    let mut ac1 = f.aircraft.clone();
    let t_fused = fused.detect_resolve(&mut ac1, &cfg);

    let mut split = GpuBackend::titan_x_pascal();
    let mut ac2 = f.aircraft.clone();
    let t_split = split.detect_resolve_split(&mut ac2, &cfg);

    Ablation {
        id: "fused-kernel".into(),
        description: format!(
            "Tasks 2+3 fused in one kernel (paper) vs split kernels with a \
             host round-trip, Titan X, n={n}"
        ),
        paper_ms: t_fused.as_millis_f64(),
        alternative_ms: t_split.as_millis_f64(),
        notes: vec![
            format!(
                "split variant performs {} kernel launches and {} D2H transfers",
                split.device().stats().launches,
                split.device().stats().d2h_transfers
            ),
            "trade-off: fusion saves the host round-trip (wins at small n), but              one conflicted lane serializes its whole warp through every rescan;              the split variant compacts flagged aircraft into dense warps and              overtakes fusion once conflicts are plentiful (large n)"
                .to_owned(),
        ],
    }
}

/// The paper's 96-thread blocks vs. an alternative block size, on a device.
pub fn block_size(n: usize, seed: u64, alt_block: u32, spec: DeviceSpec) -> Ablation {
    let (f, cfg) = field(n, seed);

    let mut paper = GpuBackend::new(spec.clone());
    let mut ac1 = f.aircraft.clone();
    let t_paper = paper.detect_resolve(&mut ac1, &cfg);

    let mut alt = GpuBackend::with_block_size(spec.clone(), alt_block);
    let mut ac2 = f.aircraft.clone();
    let t_alt = alt.detect_resolve(&mut ac2, &cfg);

    Ablation {
        id: "block-size".into(),
        description: format!(
            "96 threads/block (paper) vs {alt_block} threads/block, {}, n={n}",
            spec.name
        ),
        paper_ms: t_paper.as_millis_f64(),
        alternative_ms: t_alt.as_millis_f64(),
        notes: vec!["results are identical by construction; only occupancy/geometry shifts".into()],
    }
}

/// Three expanding-box passes (paper) vs. one single wide-box pass.
///
/// The single-pass variant uses the final (2 nm) half-width immediately:
/// faster, but it discards radars/aircraft that a tighter first box would
/// have disambiguated — the ablation reports both time and match quality.
pub fn expanding_box(n: usize, seed: u64) -> Ablation {
    let (f, cfg) = field(n, seed);

    // Paper: 3 passes on the Titan X clock.
    let mut gpu = GpuBackend::titan_x_pascal();
    let mut ac1 = f.aircraft.clone();
    let mut field1 = f.clone();
    let mut radars1 = field1.generate_radar();
    let t_paper = gpu.track_correlate(&mut ac1, &mut radars1, &cfg);
    let matched_paper = ac1.iter().filter(|a| a.r_match == 1).count();

    // Alternative: one pass with the widest box.
    let wide_cfg = AtmConfig {
        track_passes: 1,
        track_box_half_nm: cfg.pass_half_width(cfg.track_passes - 1),
        ..cfg.clone()
    };
    let mut gpu2 = GpuBackend::titan_x_pascal();
    let mut ac2 = f.aircraft.clone();
    let mut field2 = f.clone();
    let mut radars2 = field2.generate_radar();
    let t_alt = gpu2.track_correlate(&mut ac2, &mut radars2, &wide_cfg);
    let matched_alt = ac2.iter().filter(|a| a.r_match == 1).count();

    Ablation {
        id: "expanding-box".into(),
        description: format!(
            "three expanding-box passes (paper) vs one wide-box pass, Titan X, n={n}"
        ),
        paper_ms: t_paper.as_millis_f64(),
        alternative_ms: t_alt.as_millis_f64(),
        notes: vec![format!(
            "correlated aircraft: {matched_paper} (paper) vs {matched_alt} (wide box) of {n} \
             — the wide box discards more radars to ambiguity"
        )],
    }
}

/// STARAN one-PE-per-record vs. ClearSpeed `ceil(n/192)` virtualization on
/// Task 1 (identical algorithm, different machine shape).
pub fn pe_virtualization(n: usize, seed: u64) -> Ablation {
    let (f, cfg) = field(n, seed);

    let mut staran = ApBackend::staran();
    let mut field1 = f.clone();
    let mut radars1 = field1.generate_radar();
    let t_staran = staran.track_correlate(&mut field1.aircraft, &mut radars1, &cfg);

    let mut cs = ApBackend::clearspeed();
    let mut field2 = f.clone();
    let mut radars2 = field2.generate_radar();
    let t_cs = cs.track_correlate(&mut field2.aircraft, &mut radars2, &cfg);

    Ablation {
        id: "pe-virtualization".into(),
        description: format!(
            "one PE per record (STARAN model) vs ceil(n/192) virtualized passes \
             (CSX600), Task 1, n={n}"
        ),
        paper_ms: t_staran.as_millis_f64(),
        alternative_ms: t_cs.as_millis_f64(),
        notes: vec![format!(
            "virtualization multiplies every associative primitive by {} passes",
            (n as u64).div_ceil(192)
        )],
    }
}

/// Global-memory-only kernels (the paper's compatibility choice) vs.
/// shared-memory tiling, on the device where it matters most: the
/// cacheless GeForce 9800 GT.
pub fn shared_memory_tiling(n: usize, seed: u64) -> Ablation {
    let (f, cfg) = field(n, seed);

    let mut global = GpuBackend::geforce_9800_gt();
    let mut ac1 = f.aircraft.clone();
    let t_global = global.detect_resolve(&mut ac1, &cfg);

    let mut tiled = GpuBackend::geforce_9800_gt();
    let mut ac2 = f.aircraft.clone();
    let t_tiled = tiled.detect_resolve_tiled(&mut ac2, &cfg);

    assert_eq!(ac1, ac2, "tiling must not change results");
    Ablation {
        id: "shared-memory-tiling".into(),
        description: format!(
            "global-memory-only kernel (paper, CC 1.x compatible) vs              shared-memory tiled kernel, GeForce 9800 GT, n={n}"
        ),
        paper_ms: t_global.as_millis_f64(),
        alternative_ms: t_tiled.as_millis_f64(),
        notes: vec![
            "the paper keeps everything in global memory for old-architecture              compatibility; tiling stages each trial tile once per block and              rescans it from shared memory — the classic fix for cacheless              CC 1.x parts"
                .to_owned(),
        ],
    }
}

/// How much of the modeled Xeon's collapse is synchronization: the full
/// lock-per-record model vs. the same work with zero lock cost.
pub fn locking(n: usize, seed: u64) -> Ablation {
    let (mut f, cfg) = field(n, seed);
    let mut radars = f.generate_radar();

    let mut ops = OpCounter::new();
    let stats = track_correlate(&mut f.aircraft, &mut radars, &cfg, &mut ops);

    let model = XeonModel::xeon_16_core();
    let locked = WorkEstimate {
        ops: ops.clone(),
        lock_acquisitions: stats.box_tests + 2 * stats.matched + n as u64,
        barriers: stats.passes_run as u64 + 2,
        n,
    };
    let lock_free = WorkEstimate {
        lock_acquisitions: 0,
        ..locked.clone()
    };

    let t_locked = model.time_for(&locked, 1);
    let t_free = model.time_for(&lock_free, 1);

    Ablation {
        id: "locking".into(),
        description: format!(
            "lock-per-record shared DB (prior work's Xeon) vs hypothetical \
             lock-free access, Task 1 work at n={n}"
        ),
        paper_ms: t_locked.as_millis_f64(),
        alternative_ms: t_free.as_millis_f64(),
        notes: vec![format!(
            "{} lock acquisitions modeled",
            locked.lock_acquisitions
        )],
    }
}

/// Run every ablation at a standard size.
pub fn all(n: usize, seed: u64) -> Vec<Ablation> {
    all_on(n, seed, &Harness::serial())
}

/// Relative cost estimates for the six ablations at the same `n`, measured
/// once on the reference host (ms at n=2000, rounded): the detect-resolve
/// pairs dominate — the 9800 GT functional walk (tiling) and the fused/split
/// contrast are the heavy tail, the analytic locking model is ~free. Only
/// the *order* matters (see [`crate::harness::descending_cost_order`]), so
/// coarse static estimates claim correctly at every size.
const ABLATION_COST_ESTIMATES: [f64; 6] = [
    40.0, // fused-kernel: two full detect_resolve executions
    30.0, // block-size: two detect_resolve executions, same device
    8.0,  // expanding-box: two track_correlate executions
    6.0,  // pe-virtualization: two track_correlate executions
    3.0,  // locking: one serial track_correlate + analytic model
    60.0, // shared-memory-tiling: two detect_resolve walks, tiled variant
];

/// Which measured stage class dominates each ablation's host cost:
/// `true` for the detect-resolve walks (fused-kernel, block-size,
/// shared-memory-tiling), `false` for the track-correlate/sweep-shaped
/// work (expanding-box, pe-virtualization, locking).
const DETECT_DOMINATED: [bool; 6] = [true, true, false, false, false, true];

/// The cost estimates driving the ablation claim order: measured from a
/// previous `BENCH_sweep.json` when one parses at `bench_json`, the static
/// [`ABLATION_COST_ESTIMATES`] otherwise. Purely a wall-clock knob — the
/// estimates pick the claim order, never the output (see [`all_on`]).
pub fn cost_estimates(bench_json: &Path) -> [f64; 6] {
    measured_cost_estimates(bench_json).unwrap_or(ABLATION_COST_ESTIMATES)
}

/// Rebalance the static estimates by measured stage wall times.
///
/// A prior bench run measured, on *this* host, what the two kinds of work
/// the ablations re-run actually cost: `sharded-detect-1` is pure Tasks
/// 2+3 executions (what the detect-dominated ablations spend their time
/// in), `serial-grid` the full sweep (the track-shaped remainder's best
/// proxy). Each family splits its measured wall across its members in the
/// static table's proportions, so measurement decides *between* the
/// families — e.g. a host where the grid scan makes detect walks cheap
/// lets the track family claim earlier — while the static shape still
/// orders members *within* a family, which no bench stage resolves finer.
/// `None` (→ static fallback) when the file is absent, unparseable, or
/// missing positive finite walls for either stage.
fn measured_cost_estimates(path: &Path) -> Option<[f64; 6]> {
    let doc = parse_json(&std::fs::read_to_string(path).ok()?).ok()?;
    let stages = doc.get("stages")?.as_arr()?;
    let wall = |id: &str| {
        stages
            .iter()
            .find(|s| s.get("id").and_then(JsonValue::as_str) == Some(id))
            .and_then(|s| s.get("wall_ms"))
            .and_then(JsonValue::as_f64)
    };
    let detect_wall = wall("sharded-detect-1")?;
    let sweep_wall = wall("serial-grid")?;
    if !(detect_wall.is_finite() && sweep_wall.is_finite() && detect_wall > 0.0 && sweep_wall > 0.0)
    {
        return None;
    }
    let family_sum = |detect: bool| -> f64 {
        ABLATION_COST_ESTIMATES
            .iter()
            .zip(DETECT_DOMINATED)
            .filter(|&(_, d)| d == detect)
            .map(|(&c, _)| c)
            .sum()
    };
    let mut estimates = [0.0; 6];
    for (i, est) in estimates.iter_mut().enumerate() {
        let (fam_wall, fam_sum) = if DETECT_DOMINATED[i] {
            (detect_wall, family_sum(true))
        } else {
            (sweep_wall, family_sum(false))
        };
        *est = ABLATION_COST_ESTIMATES[i] / fam_sum * fam_wall;
    }
    Some(estimates)
}

/// [`all`], fanning the six independent ablations across the harness's
/// workers, claimed heaviest-first per [`ABLATION_COST_ESTIMATES`]. Output
/// order is fixed regardless of the job count or claim order.
pub fn all_on(n: usize, seed: u64, harness: &Harness) -> Vec<Ablation> {
    run_all(n, seed, harness, &ABLATION_COST_ESTIMATES)
}

/// [`all_on`], claiming by measured per-stage wall times from a previous
/// `BENCH_sweep.json` when `bench_json` parses (see [`cost_estimates`];
/// static fallback otherwise). Same fixed output, possibly better packing.
pub fn all_measured(n: usize, seed: u64, harness: &Harness, bench_json: &Path) -> Vec<Ablation> {
    run_all(n, seed, harness, &cost_estimates(bench_json))
}

fn run_all(n: usize, seed: u64, harness: &Harness, estimates: &[f64; 6]) -> Vec<Ablation> {
    let order = crate::harness::descending_cost_order(estimates);
    harness.run_ordered(6, &order, |i| match i {
        0 => fused_kernel(n, seed),
        1 => block_size(n, seed, 256, DeviceSpec::titan_x_pascal()),
        2 => expanding_box(n, seed),
        3 => pe_virtualization(n, seed),
        4 => locking(n, seed),
        _ => shared_memory_tiling(n, seed),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fused_kernel_beats_split() {
        let a = fused_kernel(800, 3);
        assert!(
            a.speedup() > 1.0,
            "the paper's fusion argument must hold: {a:?}"
        );
    }

    #[test]
    fn virtualization_costs_passes() {
        let a = pe_virtualization(1_920, 3);
        // 10 passes of virtualization on a 36x faster clock: ClearSpeed
        // still wins on absolute time at this size, so just check both
        // positive and the note records the pass count.
        assert!(a.paper_ms > 0.0 && a.alternative_ms > 0.0);
        assert!(a.notes[0].contains("10 passes"));
    }

    #[test]
    fn lock_free_xeon_would_be_faster() {
        let a = locking(2_000, 3);
        assert!(a.paper_ms > a.alternative_ms);
        assert!(a.speedup() < 1.0);
    }

    #[test]
    fn expanding_box_reports_match_quality() {
        let a = expanding_box(600, 3);
        assert!(a.notes[0].contains("correlated aircraft"));
    }

    #[test]
    fn tiling_rescues_the_9800_gt() {
        let a = shared_memory_tiling(1_000, 3);
        assert!(
            a.paper_ms > a.alternative_ms,
            "tiling must beat global-memory-only on the cacheless card: {a:?}"
        );
    }

    #[test]
    fn all_runs_every_ablation() {
        let list = all(400, 9);
        assert_eq!(list.len(), 6);
        let ids: Vec<&str> = list.iter().map(|a| a.id.as_str()).collect();
        assert!(ids.contains(&"fused-kernel"));
        assert!(ids.contains(&"locking"));
    }

    /// A minimal bench artifact with the two stage walls the estimator
    /// reads, written to a unique temp path.
    fn bench_artifact(name: &str, detect_wall: f64, sweep_wall: f64) -> std::path::PathBuf {
        let json = JsonValue::obj().set(
            "stages",
            JsonValue::Arr(vec![
                JsonValue::obj()
                    .set("id", "serial-grid")
                    .set("wall_ms", sweep_wall),
                JsonValue::obj()
                    .set("id", "sharded-detect-1")
                    .set("wall_ms", detect_wall),
            ]),
        );
        let path = std::env::temp_dir().join(format!("atm-ablation-test-{name}.json"));
        std::fs::write(&path, json.to_pretty()).expect("temp write");
        path
    }

    #[test]
    fn measured_walls_decide_between_the_ablation_families() {
        use crate::harness::descending_cost_order;

        // Detect-heavy host: the three detect-dominated ablations must
        // claim before any track-shaped one.
        let path = bench_artifact("detect-heavy", 10_000.0, 1.0);
        let order = descending_cost_order(&cost_estimates(&path));
        assert!(order[..3].iter().all(|&i| DETECT_DOMINATED[i]), "{order:?}");
        // Within the family the static shape still rules: tiling (60)
        // before fused (40) before block (30).
        assert_eq!(order[..3], [5, 0, 1]);
        std::fs::remove_file(&path).ok();

        // Sweep-heavy host: the track family overtakes.
        let path = bench_artifact("sweep-heavy", 1.0, 10_000.0);
        let order = descending_cost_order(&cost_estimates(&path));
        assert!(
            order[..3].iter().all(|&i| !DETECT_DOMINATED[i]),
            "{order:?}"
        );
        assert_eq!(order[..3], [2, 3, 4]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn estimates_fall_back_to_the_static_table() {
        // No file.
        let missing = std::env::temp_dir().join("atm-ablation-test-does-not-exist.json");
        assert_eq!(cost_estimates(&missing), ABLATION_COST_ESTIMATES);

        // Unparseable file.
        let path = std::env::temp_dir().join("atm-ablation-test-corrupt.json");
        std::fs::write(&path, "not json {").expect("temp write");
        assert_eq!(cost_estimates(&path), ABLATION_COST_ESTIMATES);
        std::fs::remove_file(&path).ok();

        // Parseable but missing the needed stage.
        let path = std::env::temp_dir().join("atm-ablation-test-no-stage.json");
        std::fs::write(
            &path,
            JsonValue::obj()
                .set(
                    "stages",
                    JsonValue::Arr(vec![JsonValue::obj()
                        .set("id", "serial-grid")
                        .set("wall_ms", 5.0)]),
                )
                .to_pretty(),
        )
        .expect("temp write");
        assert_eq!(cost_estimates(&path), ABLATION_COST_ESTIMATES);
        std::fs::remove_file(&path).ok();

        // Degenerate walls (zero) are rejected too.
        let path = bench_artifact("zero-wall", 0.0, 5.0);
        assert_eq!(cost_estimates(&path), ABLATION_COST_ESTIMATES);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn measured_claim_order_does_not_change_the_ablation_output() {
        let baseline = all(400, 9);
        let path = bench_artifact("order-neutral", 10_000.0, 1.0);
        let measured = all_measured(400, 9, &Harness::new(3), &path);
        std::fs::remove_file(&path).ok();
        assert_eq!(baseline.len(), measured.len());
        for (s, p) in baseline.iter().zip(&measured) {
            assert_eq!(s.id, p.id);
            assert_eq!(s.paper_ms, p.paper_ms);
            assert_eq!(s.alternative_ms, p.alternative_ms);
            assert_eq!(s.notes, p.notes);
        }
    }

    #[test]
    fn parallel_ablations_match_serial() {
        let serial = all(400, 9);
        let parallel = all_on(400, 9, &Harness::new(3));
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.id, p.id);
            assert_eq!(s.paper_ms, p.paper_ms);
            assert_eq!(s.alternative_ms, p.alternative_ms);
            assert_eq!(s.notes, p.notes);
        }
    }
}
