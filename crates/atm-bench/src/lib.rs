//! Benchmark harness: regenerates every figure of the paper's evaluation.
//!
//! The paper's §6 contains six figures and two prose claims; each maps to a
//! generator here (see DESIGN.md's per-experiment index):
//!
//! | Experiment | Paper artifact | Generator |
//! |---|---|---|
//! | E1 | Fig. 4 — Task 1, all platforms | [`figures::fig4`] |
//! | E2 | Fig. 5 — Task 1, NVIDIA cards | [`figures::fig5`] |
//! | E3 | Fig. 6 — Tasks 2+3, all platforms | [`figures::fig6`] |
//! | E4 | Fig. 7 — Tasks 2+3, NVIDIA cards | [`figures::fig7`] |
//! | E5 | Fig. 8 — linear fit, Task 1 on GTX 880M | [`figures::fig8`] |
//! | E6 | Fig. 9 — quadratic fit, Tasks 2+3 on 9800 GT | [`figures::fig9`] |
//! | E7 | §6.2 deadline-miss claims | [`experiments::deadlines`] |
//! | E8 | §6.2 determinism claims | [`experiments::determinism`] |
//!
//! The `figures` binary drives all of them and writes aligned text tables
//! plus machine-readable JSON under `results/`.

pub mod ablations;
pub mod experiments;
pub mod figures;
pub mod harness;
pub mod scenarios;
pub mod series;
pub mod stream;
pub mod sweep;

pub use harness::Harness;
pub use scenarios::{scenario_figure, scenario_metrics, ScenarioSweepConfig};
pub use series::{FigureData, Series};
pub use stream::{FigureSkeleton, FigureStream};
pub use sweep::{
    measure_point, sweep_roster, sweep_roster_on, sweep_roster_streamed, SweepConfig, Task,
};
