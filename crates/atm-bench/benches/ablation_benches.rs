//! Ablation benches: the paper's design choices against their alternatives
//! (see `atm_bench::ablations` for the modeled-time comparisons; these
//! benches execute both variants so regressions in either code path are
//! caught, and print the modeled verdict once per run).

use atm_bench::ablations;
use criterion::{criterion_group, criterion_main, Criterion};
use gpu_sim::DeviceSpec;
use std::hint::black_box;
use std::sync::Once;
use std::time::Duration;

const N: usize = 600;
const SEED: u64 = 2018;

static PRINT_ONCE: Once = Once::new();

fn print_modeled_verdicts() {
    PRINT_ONCE.call_once(|| {
        eprintln!("modeled ablation verdicts at n={N}:");
        for a in ablations::all(N, SEED) {
            eprintln!(
                "  {:<18} paper {:>10.4} ms  vs  alternative {:>10.4} ms  ({:.2}x)",
                a.id,
                a.paper_ms,
                a.alternative_ms,
                a.speedup()
            );
        }
    });
}

fn ablation_fused_kernel(c: &mut Criterion) {
    print_modeled_verdicts();
    c.bench_function("ablation_fused_kernel", |b| {
        b.iter(|| black_box(ablations::fused_kernel(N, SEED)))
    });
}

fn ablation_block_size(c: &mut Criterion) {
    c.bench_function("ablation_block_size", |b| {
        b.iter(|| {
            black_box(ablations::block_size(N, SEED, 256, DeviceSpec::titan_x_pascal()))
        })
    });
}

fn ablation_expanding_box(c: &mut Criterion) {
    c.bench_function("ablation_expanding_box", |b| {
        b.iter(|| black_box(ablations::expanding_box(N, SEED)))
    });
}

fn ablation_pe_virtualization(c: &mut Criterion) {
    c.bench_function("ablation_pe_virtualization", |b| {
        b.iter(|| black_box(ablations::pe_virtualization(N, SEED)))
    });
}

fn ablation_locking(c: &mut Criterion) {
    c.bench_function("ablation_locking", |b| {
        b.iter(|| black_box(ablations::locking(N, SEED)))
    });
}

fn configure() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = configure();
    targets = ablation_fused_kernel, ablation_block_size, ablation_expanding_box,
              ablation_pe_virtualization, ablation_locking
}
criterion_main!(benches);
