//! Ablation benches: the paper's design choices against their alternatives
//! (see `atm_bench::ablations` for the modeled-time comparisons; these
//! benches execute both variants so regressions in either code path are
//! caught, and print the modeled verdict once per run).
//!
//! Plain `harness = false` mains; pass a substring argument to filter.

use atm_bench::ablations;
use gpu_sim::DeviceSpec;
use std::hint::black_box;
use std::time::Instant;

const N: usize = 600;
const SEED: u64 = 2018;

fn bench(filter: &str, name: &str, mut f: impl FnMut()) {
    if !name.contains(filter) {
        return;
    }
    for _ in 0..2 {
        f();
    }
    let iters = 10u32;
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let per = start.elapsed() / iters;
    println!("{name:<52} {per:>12?}/iter");
}

fn main() {
    let filter = std::env::args().nth(1).unwrap_or_default();
    let f = filter.as_str();

    eprintln!("modeled ablation verdicts at n={N}:");
    for a in ablations::all(N, SEED) {
        eprintln!(
            "  {:<18} paper {:>10.4} ms  vs  alternative {:>10.4} ms  ({:.2}x)",
            a.id,
            a.paper_ms,
            a.alternative_ms,
            a.speedup()
        );
    }

    bench(f, "ablation_fused_kernel", || {
        black_box(ablations::fused_kernel(N, SEED));
    });
    bench(f, "ablation_block_size", || {
        black_box(ablations::block_size(
            N,
            SEED,
            256,
            DeviceSpec::titan_x_pascal(),
        ));
    });
    bench(f, "ablation_expanding_box", || {
        black_box(ablations::expanding_box(N, SEED));
    });
    bench(f, "ablation_pe_virtualization", || {
        black_box(ablations::pe_virtualization(N, SEED));
    });
    bench(f, "ablation_locking", || {
        black_box(ablations::locking(N, SEED));
    });
}
