//! Microbenchmarks of the substrates the reproduction is built on: the
//! SIMT simulator's launch machinery, the AP emulator's primitives, the
//! cyclic executive, the airfield generator and the fitting crate.

use ap_sim::{ApMachine, ApTimingProfile};
use atm_core::{Airfield, AtmConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use curvefit::polyfit;
use gpu_sim::{CudaDevice, DeviceSpec, LaunchConfig};
use rt_sched::{CyclicExecutive, MajorCycleSpec, TaskExecution};
use sim_clock::{CostSink, SimDuration};
use std::hint::black_box;
use std::time::Duration;

fn gpu_launch_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("gpu_sim_launch");
    for threads in [96usize, 9_600, 96_000] {
        group.bench_function(BenchmarkId::new("empty_kernel", threads), |b| {
            let mut dev = CudaDevice::new(DeviceSpec::titan_x_pascal());
            let cfg = LaunchConfig::paper_for_items(threads);
            b.iter(|| {
                black_box(dev.launch("bench", cfg, |ctx, t| {
                    if ctx.in_range(threads) {
                        t.fadd(1);
                    }
                }))
            });
        });
    }
    group.finish();
}

fn ap_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("ap_sim_primitives");
    let n = 10_000;
    group.bench_function("search_10k", |b| {
        let mut m = ApMachine::new(ApTimingProfile::staran());
        m.load_records((0..n as i64).collect::<Vec<_>>(), 1);
        b.iter(|| black_box(m.search(2, |&v| v % 7 == 0)));
    });
    group.bench_function("min_reduce_10k", |b| {
        let mut m = ApMachine::new(ApTimingProfile::staran());
        m.load_records((0..n as i64).collect::<Vec<_>>(), 1);
        let all = ap_sim::ResponderSet::all(n);
        b.iter(|| black_box(m.min_by_key(&all, |&v| (v ^ 12345) as f64)));
    });
    group.finish();
}

fn executive_throughput(c: &mut Criterion) {
    c.bench_function("rt_sched/major_cycle_bookkeeping", |b| {
        b.iter(|| {
            let mut exec = CyclicExecutive::new(MajorCycleSpec::paper());
            let mut workload = |_c: usize, p: usize| {
                let mut tasks =
                    vec![TaskExecution::new("Task1", SimDuration::from_micros(100))];
                if p == 15 {
                    tasks.push(TaskExecution::new("Task2+3", SimDuration::from_millis(1)));
                }
                tasks
            };
            black_box(exec.run(&mut workload, 10))
        })
    });
}

fn airfield_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("airfield");
    for n in [1_000usize, 8_000] {
        group.bench_function(BenchmarkId::new("setup", n), |b| {
            b.iter(|| black_box(Airfield::new(n, AtmConfig::with_seed(7))))
        });
        group.bench_function(BenchmarkId::new("radar_period", n), |b| {
            let mut field = Airfield::new(n, AtmConfig::with_seed(7));
            b.iter(|| black_box(field.generate_radar()))
        });
    }
    group.finish();
}

fn curve_fitting(c: &mut Criterion) {
    let x: Vec<f64> = (0..1_000).map(|i| i as f64).collect();
    let y: Vec<f64> = x.iter().map(|&v| 1.0 + 0.5 * v + 1e-4 * v * v).collect();
    c.bench_function("curvefit/polyfit_deg2_1000pts", |b| {
        b.iter(|| black_box(polyfit(black_box(&x), black_box(&y), 2).unwrap()))
    });
}

fn cost_sink_overhead(c: &mut Criterion) {
    c.bench_function("sim_clock/trace_hot_loop", |b| {
        let mut trace = gpu_sim::ThreadTrace::new();
        b.iter(|| {
            trace.reset();
            for _ in 0..1_000 {
                trace.fadd(4);
                trace.load_shared(16);
                trace.branch(false);
            }
            black_box(&trace);
        })
    });
}

fn configure() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = configure();
    targets = gpu_launch_overhead, ap_primitives, executive_throughput,
              airfield_generation, curve_fitting, cost_sink_overhead
}
criterion_main!(benches);
