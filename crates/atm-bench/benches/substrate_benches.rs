//! Microbenchmarks of the substrates the reproduction is built on: the
//! SIMT simulator's launch machinery, the AP emulator's primitives, the
//! cyclic executive, the airfield generator and the fitting crate.
//!
//! Plain `harness = false` mains; pass a substring argument to filter.

use ap_sim::{ApMachine, ApTimingProfile};
use atm_core::{Airfield, AtmConfig};
use curvefit::polyfit;
use gpu_sim::{CudaDevice, DeviceSpec, LaunchConfig};
use rt_sched::{CyclicExecutive, MajorCycleSpec, TaskExecution};
use sim_clock::{CostSink, SimDuration};
use std::hint::black_box;
use std::time::Instant;

fn bench(filter: &str, name: &str, mut f: impl FnMut()) {
    if !name.contains(filter) {
        return;
    }
    for _ in 0..2 {
        f();
    }
    let iters = 10u32;
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let per = start.elapsed() / iters;
    println!("{name:<52} {per:>12?}/iter");
}

fn main() {
    let filter = std::env::args().nth(1).unwrap_or_default();
    let f = filter.as_str();

    for threads in [96usize, 9_600, 96_000] {
        let mut dev = CudaDevice::new(DeviceSpec::titan_x_pascal());
        let cfg = LaunchConfig::paper_for_items(threads);
        bench(f, &format!("gpu_sim_launch/empty_kernel/{threads}"), || {
            black_box(dev.launch("bench", cfg, |ctx, t| {
                if ctx.in_range(threads) {
                    t.fadd(1);
                }
            }));
        });
    }

    let n = 10_000;
    {
        let mut m = ApMachine::new(ApTimingProfile::staran());
        m.load_records((0..n as i64).collect::<Vec<_>>(), 1);
        bench(f, "ap_sim_primitives/search_10k", || {
            black_box(m.search(2, |&v| v % 7 == 0));
        });
    }
    {
        let mut m = ApMachine::new(ApTimingProfile::staran());
        m.load_records((0..n as i64).collect::<Vec<_>>(), 1);
        let all = ap_sim::ResponderSet::all(n);
        bench(f, "ap_sim_primitives/min_reduce_10k", || {
            black_box(m.min_by_key(&all, |&v| (v ^ 12345) as f64));
        });
    }

    bench(f, "rt_sched/major_cycle_bookkeeping", || {
        let mut exec = CyclicExecutive::new(MajorCycleSpec::paper());
        let mut workload = |_c: usize, p: usize| {
            let mut tasks = vec![TaskExecution::new("Task1", SimDuration::from_micros(100))];
            if p == 15 {
                tasks.push(TaskExecution::new("Task2+3", SimDuration::from_millis(1)));
            }
            tasks
        };
        black_box(exec.run(&mut workload, 10));
    });

    for n in [1_000usize, 8_000] {
        bench(f, &format!("airfield/setup/{n}"), || {
            black_box(Airfield::new(n, AtmConfig::with_seed(7)));
        });
        let mut field = Airfield::new(n, AtmConfig::with_seed(7));
        bench(f, &format!("airfield/radar_period/{n}"), || {
            black_box(field.generate_radar());
        });
    }

    let x: Vec<f64> = (0..1_000).map(|i| i as f64).collect();
    let y: Vec<f64> = x.iter().map(|&v| 1.0 + 0.5 * v + 1e-4 * v * v).collect();
    bench(f, "curvefit/polyfit_deg2_1000pts", || {
        black_box(polyfit(black_box(&x), black_box(&y), 2).unwrap());
    });

    let mut trace = gpu_sim::ThreadTrace::new();
    bench(f, "sim_clock/trace_hot_loop", || {
        trace.reset();
        for _ in 0..1_000 {
            trace.fadd(4);
            trace.load_shared(16);
            trace.branch(false);
        }
        black_box(&trace);
    });
}
