//! A minimal, dependency-free JSON parser into [`JsonValue`].
//!
//! The writer half lives in [`crate::json`]; this is the read half, added
//! so tools can consume their own artifacts (e.g. the benchmark harness
//! re-reading a previous `BENCH_sweep.json` to order work by measured
//! cost) without a registry dependency. It accepts standard JSON; numbers
//! without a fraction, exponent or sign parse as [`JsonValue::U64`] and
//! everything else numeric as [`JsonValue::F64`], mirroring what the
//! writer distinguishes.

use crate::json::JsonValue;

/// Parse a JSON document. Returns a message with a byte offset on error;
/// trailing non-whitespace after the top-level value is an error.
pub fn parse_json(text: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("expected a value at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let c = self.unicode_escape()?;
                            out.push(c);
                            continue;
                        }
                        _ => return Err(format!("bad escape at byte {start}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance over one UTF-8 character (the input is &str,
                    // so boundaries are valid by construction).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8".to_owned())?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// The four hex digits after `\u`, combining a surrogate pair when one
    /// follows. Leaves `pos` after the consumed digits.
    fn unicode_escape(&mut self) -> Result<char, String> {
        let unit = self.hex4()?;
        let code = if (0xD800..0xDC00).contains(&unit) {
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let low = self.hex4()?;
                if !(0xDC00..0xE000).contains(&low) {
                    return Err(format!("bad low surrogate before byte {}", self.pos));
                }
                0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00)
            } else {
                return Err(format!("lone surrogate before byte {}", self.pos));
            }
        } else {
            unit
        };
        char::from_u32(code).ok_or_else(|| format!("bad code point before byte {}", self.pos))
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let digits = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| format!("truncated \\u escape at byte {}", self.pos))?;
        let s = std::str::from_utf8(digits).map_err(|_| "invalid UTF-8".to_owned())?;
        let v = u32::from_str_radix(s, 16)
            .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut integral = true;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    integral = false;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "invalid UTF-8".to_owned())?;
        if integral && !text.starts_with('-') {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(JsonValue::U64(v));
            }
        }
        text.parse::<f64>()
            .map(JsonValue::F64)
            .map_err(|_| format!("bad number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_what_the_writer_emits() {
        let v = JsonValue::obj()
            .set("id", "fig4")
            .set("xs", vec![1.0, 2.5])
            .set("n", 3u64)
            .set("neg", JsonValue::F64(-3.25))
            .set("ok", true)
            .set("nothing", JsonValue::Null)
            .set("empty", JsonValue::Arr(vec![]))
            .set("nested", JsonValue::obj().set("s", "a\"b\\c\nd"));
        for text in [v.to_compact(), v.to_pretty()] {
            assert_eq!(parse_json(&text), Ok(v.clone()), "{text}");
        }
    }

    #[test]
    fn integers_and_floats_keep_their_types() {
        assert_eq!(parse_json("7"), Ok(JsonValue::U64(7)));
        assert_eq!(parse_json("7.0"), Ok(JsonValue::F64(7.0)));
        assert_eq!(parse_json("-7"), Ok(JsonValue::F64(-7.0)));
        assert_eq!(parse_json("1e3"), Ok(JsonValue::F64(1000.0)));
    }

    #[test]
    fn unicode_escapes_decode_including_surrogate_pairs() {
        assert_eq!(
            parse_json(r#""Aé😀""#),
            Ok(JsonValue::Str("Aé😀".to_owned()))
        );
        let escaped = "\"\\u0041\\u00e9\\ud83d\\ude00\"";
        assert_eq!(parse_json(escaped), Ok(JsonValue::Str("Aé😀".to_owned())));
    }

    #[test]
    fn malformed_documents_are_rejected_with_an_offset() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "\"x", "1 2", "[1] x"] {
            assert!(parse_json(bad).is_err(), "{bad:?} must not parse");
        }
    }
}
