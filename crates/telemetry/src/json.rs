//! A minimal, dependency-free JSON value and writer.
//!
//! The workspace builds offline with no registry dependencies, so the
//! exporters (figure series, Chrome traces, metrics snapshots) serialize
//! through this module instead of serde. Object keys keep insertion order
//! and floats print in Rust's shortest round-trip form, so the same data
//! always produces byte-identical output — a requirement of the repo's
//! determinism policy.

use std::fmt::Write as _;

/// A JSON value with insertion-ordered objects.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (printed without a decimal point).
    U64(u64),
    /// A float (non-finite values print as `null`).
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object; keys keep insertion order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// An empty object.
    pub fn obj() -> JsonValue {
        JsonValue::Obj(Vec::new())
    }

    /// Insert a key (builder-style); panics on non-objects.
    pub fn set(mut self, key: &str, value: impl Into<JsonValue>) -> JsonValue {
        match &mut self {
            JsonValue::Obj(fields) => fields.push((key.to_owned(), value.into())),
            other => panic!("set() on non-object JSON value: {other:?}"),
        }
        self
    }

    /// The value at `key`, if this is an object containing it (first
    /// occurrence wins, matching how the writer never duplicates keys).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number (`U64` widens losslessly
    /// for the magnitudes the exporters emit).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::F64(v) => Some(*v),
            JsonValue::U64(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The items, if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Compact rendering (no whitespace).
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with two-space indentation.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::U64(v) => {
                let _ = write!(out, "{v}");
            }
            JsonValue::F64(v) => out.push_str(&fmt_f64(*v)),
            JsonValue::Str(s) => escape_into(out, s),
            JsonValue::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            JsonValue::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    escape_into(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

/// Format a float for JSON: shortest round-trip form, `null` if non-finite.
pub fn fmt_f64(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_owned();
    }
    // Distinguish 2.0 from the integer 2 the way serde_json does.
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

/// Append `s` as a quoted, escaped JSON string.
pub fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for JsonValue {
    fn from(v: bool) -> Self {
        JsonValue::Bool(v)
    }
}
impl From<u64> for JsonValue {
    fn from(v: u64) -> Self {
        JsonValue::U64(v)
    }
}
impl From<usize> for JsonValue {
    fn from(v: usize) -> Self {
        JsonValue::U64(v as u64)
    }
}
impl From<f64> for JsonValue {
    fn from(v: f64) -> Self {
        JsonValue::F64(v)
    }
}
impl From<&str> for JsonValue {
    fn from(v: &str) -> Self {
        JsonValue::Str(v.to_owned())
    }
}
impl From<String> for JsonValue {
    fn from(v: String) -> Self {
        JsonValue::Str(v)
    }
}
impl<T: Into<JsonValue>> From<Vec<T>> for JsonValue {
    fn from(v: Vec<T>) -> Self {
        JsonValue::Arr(v.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structures() {
        let v = JsonValue::obj()
            .set("id", "fig4")
            .set("xs", vec![1.0, 2.5])
            .set("n", 3u64)
            .set("ok", true);
        assert_eq!(
            v.to_compact(),
            r#"{"id":"fig4","xs":[1.0,2.5],"n":3,"ok":true}"#
        );
        let pretty = v.to_pretty();
        assert!(pretty.contains("\n  \"id\": \"fig4\""));
    }

    #[test]
    fn read_accessors_navigate_objects_arrays_and_scalars() {
        let v = JsonValue::obj()
            .set("name", "bench")
            .set("wall_ms", 12.5)
            .set("count", 3u64)
            .set("stages", vec![1.0, 2.0]);
        assert_eq!(v.get("name").and_then(JsonValue::as_str), Some("bench"));
        assert_eq!(v.get("wall_ms").and_then(JsonValue::as_f64), Some(12.5));
        assert_eq!(v.get("count").and_then(JsonValue::as_f64), Some(3.0));
        assert_eq!(
            v.get("stages").and_then(JsonValue::as_arr).map(<[_]>::len),
            Some(2)
        );
        assert_eq!(v.get("missing"), None);
        assert_eq!(JsonValue::Null.get("x"), None);
        assert_eq!(JsonValue::Bool(true).as_f64(), None);
    }

    #[test]
    fn escapes_control_characters_and_quotes() {
        let mut out = String::new();
        escape_into(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn float_formatting_is_roundtrip_and_marks_integers() {
        assert_eq!(fmt_f64(2.0), "2.0");
        assert_eq!(fmt_f64(0.1), "0.1");
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(-3.25), "-3.25");
    }

    #[test]
    fn empty_containers_render_compactly_even_in_pretty_mode() {
        let v = JsonValue::obj()
            .set("a", JsonValue::Arr(vec![]))
            .set("b", JsonValue::obj());
        assert_eq!(v.to_pretty(), "{\n  \"a\": [],\n  \"b\": {}\n}");
    }
}
