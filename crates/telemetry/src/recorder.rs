//! The one public handle for recording simulated-time telemetry.
//!
//! A [`Recorder`] is either *disabled* (the default — every call is a
//! single branch on a `None`, no allocation, no locking) or *enabled*, in
//! which case it is a cheaply-cloneable shared handle onto one event log
//! and metrics registry. There are no globals: a bench sweep can run many
//! independent recorders in parallel, one per platform.
//!
//! Spans live on *tracks*. A track is one architecture's local clock — the
//! cyclic executive's simulated time, a CUDA device's timeline, an AP
//! machine's cycle counter — and becomes one process row in the exported
//! Chrome trace. Span timestamps are integer picoseconds of the track's
//! own clock, so recording is deterministic by construction whenever the
//! underlying simulation is.

use crate::metrics::MetricsRegistry;
use sim_clock::{SimDuration, SimInstant};
use std::sync::{Arc, Mutex};

/// Identifies a track (one process row in the Chrome trace).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TrackId(pub(crate) u32);

/// A span argument value.
#[derive(Clone, Debug, PartialEq)]
pub enum ArgValue {
    /// Unsigned integer argument.
    U64(u64),
    /// Float argument.
    F64(f64),
    /// String argument.
    Str(String),
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::U64(v)
    }
}
impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        ArgValue::U64(v as u64)
    }
}
impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::F64(v)
    }
}
impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Str(v.to_owned())
    }
}
impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Str(v)
    }
}

/// One completed span on a track.
#[derive(Clone, Debug)]
pub(crate) struct SpanEvent {
    pub track: u32,
    pub name: String,
    pub category: String,
    pub start: SimInstant,
    pub duration: SimDuration,
    pub args: Vec<(String, ArgValue)>,
}

/// One instantaneous event (e.g. a deadline miss).
#[derive(Clone, Debug)]
pub(crate) struct InstantEvent {
    pub track: u32,
    pub name: String,
    pub category: String,
    pub at: SimInstant,
}

#[derive(Debug, Default)]
pub(crate) struct Inner {
    pub tracks: Vec<String>,
    pub spans: Vec<SpanEvent>,
    pub instants: Vec<InstantEvent>,
    pub metrics: MetricsRegistry,
}

/// Shared telemetry handle; see the module docs.
#[derive(Clone, Debug, Default)]
pub struct Recorder {
    inner: Option<Arc<Mutex<Inner>>>,
}

impl Recorder {
    /// The zero-cost disabled recorder: every method is a no-op.
    pub fn disabled() -> Recorder {
        Recorder { inner: None }
    }

    /// An enabled recorder with an empty event log.
    pub fn enabled() -> Recorder {
        Recorder {
            inner: Some(Arc::new(Mutex::new(Inner::default()))),
        }
    }

    /// Whether events are being collected. Callers with expensive argument
    /// construction should check this first.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn with<R: Default>(&self, f: impl FnOnce(&mut Inner) -> R) -> R {
        match &self.inner {
            Some(inner) => f(&mut inner.lock().expect("telemetry recorder poisoned")),
            None => R::default(),
        }
    }

    /// Register (or look up) a track by name; one process row per track in
    /// the Chrome export. Returns a dummy id when disabled.
    pub fn track(&self, name: &str) -> TrackId {
        self.with(|inner| {
            if let Some(i) = inner.tracks.iter().position(|t| t == name) {
                TrackId(i as u32)
            } else {
                inner.tracks.push(name.to_owned());
                TrackId((inner.tracks.len() - 1) as u32)
            }
        })
    }

    /// Record a completed span with no arguments.
    pub fn span(
        &self,
        track: TrackId,
        name: &str,
        category: &str,
        start: SimInstant,
        duration: SimDuration,
    ) {
        self.span_with_args(track, name, category, start, duration, Vec::new());
    }

    /// Record a completed span with arguments.
    pub fn span_with_args(
        &self,
        track: TrackId,
        name: &str,
        category: &str,
        start: SimInstant,
        duration: SimDuration,
        args: Vec<(&str, ArgValue)>,
    ) {
        self.with(|inner| {
            inner.spans.push(SpanEvent {
                track: track.0,
                name: name.to_owned(),
                category: category.to_owned(),
                start,
                duration,
                args: args.into_iter().map(|(k, v)| (k.to_owned(), v)).collect(),
            });
        });
    }

    /// Record an instantaneous event (rendered as an arrow/dot marker).
    pub fn instant(&self, track: TrackId, name: &str, category: &str, at: SimInstant) {
        self.with(|inner| {
            inner.instants.push(InstantEvent {
                track: track.0,
                name: name.to_owned(),
                category: category.to_owned(),
                at,
            });
        });
    }

    /// Add to a named counter.
    pub fn counter_add(&self, name: &str, delta: u64) {
        self.with(|inner| inner.metrics.counter_add(name, delta));
    }

    /// Read a counter (0 when disabled or never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.with(|inner| inner.metrics.counter(name))
    }

    /// Snapshot every counter as `(name, value)` pairs in name order
    /// (empty when disabled). Two snapshots bracket a cycle to give its
    /// telemetry deltas.
    pub fn counters_snapshot(&self) -> Vec<(String, u64)> {
        self.with(|inner| inner.metrics.counters_snapshot())
    }

    /// Set a named gauge.
    pub fn gauge_set(&self, name: &str, value: f64) {
        self.with(|inner| inner.metrics.gauge_set(name, value));
    }

    /// Pre-register a histogram with explicit bucket edges (ms).
    pub fn histogram_with_bounds(&self, name: &str, bounds: &[f64]) {
        self.with(|inner| inner.metrics.histogram_with_bounds(name, bounds));
    }

    /// Record a millisecond value into a histogram (default time edges on
    /// first touch).
    pub fn histogram_record_ms(&self, name: &str, value_ms: f64) {
        self.with(|inner| inner.metrics.histogram_record(name, value_ms));
    }

    /// Record a simulated duration into a histogram, in milliseconds.
    pub fn histogram_record(&self, name: &str, value: SimDuration) {
        self.histogram_record_ms(name, value.as_millis_f64());
    }

    /// Total spans recorded so far.
    pub fn span_count(&self) -> usize {
        self.with(|inner| inner.spans.len())
    }

    /// Spans recorded under a category (for tests and summaries).
    pub fn spans_in_category(&self, category: &str) -> usize {
        self.with(|inner| {
            inner
                .spans
                .iter()
                .filter(|s| s.category == category)
                .count()
        })
    }

    /// Export the event log as a Chrome `trace_event` JSON document.
    pub fn chrome_trace(&self) -> String {
        self.with(crate::trace::chrome_trace)
    }

    /// Export the metrics registry as a JSON document.
    pub fn metrics_json(&self) -> String {
        self.with(|inner| inner.metrics.to_json().to_pretty() + "\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_ignores_everything() {
        let r = Recorder::disabled();
        assert!(!r.is_enabled());
        let t = r.track("dev");
        r.span(
            t,
            "k",
            "kernel",
            SimInstant::EPOCH,
            SimDuration::from_micros(5),
        );
        r.counter_add("launches", 1);
        assert_eq!(r.span_count(), 0);
        assert_eq!(r.counter("launches"), 0);
    }

    #[test]
    fn clones_share_the_same_log() {
        let r = Recorder::enabled();
        let r2 = r.clone();
        let t = r.track("dev");
        r2.span(
            t,
            "k",
            "kernel",
            SimInstant::EPOCH,
            SimDuration::from_micros(5),
        );
        assert_eq!(r.span_count(), 1);
        assert_eq!(r.spans_in_category("kernel"), 1);
    }

    #[test]
    fn tracks_deduplicate_by_name() {
        let r = Recorder::enabled();
        let a = r.track("dev");
        let b = r.track("dev");
        let c = r.track("other");
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn independent_recorders_are_isolated() {
        let a = Recorder::enabled();
        let b = Recorder::enabled();
        a.counter_add("x", 1);
        assert_eq!(b.counter("x"), 0);
    }
}
