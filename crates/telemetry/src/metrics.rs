//! Counters, gauges and fixed-bucket histograms over simulated quantities.
//!
//! The registry is deliberately simple: metric names map to values in
//! `BTreeMap`s, so a snapshot always serializes in name order and two
//! equal-seed runs export byte-identical JSON.

use crate::json::JsonValue;
use std::collections::BTreeMap;

/// A fixed-bucket histogram: `bounds` are the inclusive upper edges of the
/// first `bounds.len()` buckets; one overflow bucket catches everything
/// above the last edge.
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// A histogram with the given ascending bucket edges.
    pub fn with_bounds(bounds: &[f64]) -> Histogram {
        assert!(
            !bounds.is_empty(),
            "histogram needs at least one bucket edge"
        );
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram edges must be strictly ascending"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Default edges for task/slack times in milliseconds: a 1–2–5 ladder
    /// from 1 µs to 10 s, wide enough for every platform in the paper.
    pub fn time_ms_bounds() -> Vec<f64> {
        let mut edges = Vec::new();
        for decade in -3i32..=3 {
            for mantissa in [1.0, 2.0, 5.0] {
                edges.push(mantissa * 10f64.powi(decade));
            }
        }
        edges.push(10_000.0);
        edges
    }

    /// Bucket index for a value: the first bucket whose upper edge admits
    /// it, or the overflow bucket.
    pub fn bucket_index(&self, value: f64) -> usize {
        self.bounds
            .iter()
            .position(|&edge| value <= edge)
            .unwrap_or(self.bounds.len())
    }

    /// Record one observation.
    pub fn record(&mut self, value: f64) {
        let i = self.bucket_index(value);
        self.counts[i] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Per-bucket counts (`bounds.len() + 1` entries, overflow last).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Bucket upper edges.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Mean of all observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Snapshot as JSON.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj()
            .set("bounds", self.bounds.clone())
            .set(
                "counts",
                JsonValue::Arr(self.counts.iter().map(|&c| JsonValue::U64(c)).collect()),
            )
            .set("count", self.count)
            .set("sum", self.sum)
            .set("mean", self.mean())
            .set("min", if self.count == 0 { 0.0 } else { self.min })
            .set("max", if self.count == 0 { 0.0 } else { self.max })
    }
}

/// Named counters, gauges and histograms.
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Add `delta` to a counter (created at zero on first touch).
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_owned()).or_insert(0) += delta;
    }

    /// Current counter value (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// All counters as `(name, value)` pairs, in name order. The stable
    /// ordering makes per-cycle delta computation deterministic.
    pub fn counters_snapshot(&self) -> Vec<(String, u64)> {
        self.counters.iter().map(|(k, &v)| (k.clone(), v)).collect()
    }

    /// Set a gauge to an absolute value.
    pub fn gauge_set(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_owned(), value);
    }

    /// Current gauge value, if set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Pre-register a histogram with explicit bucket edges.
    pub fn histogram_with_bounds(&mut self, name: &str, bounds: &[f64]) {
        self.histograms
            .entry(name.to_owned())
            .or_insert_with(|| Histogram::with_bounds(bounds));
    }

    /// Record into a histogram, creating it with the default time edges on
    /// first touch.
    pub fn histogram_record(&mut self, name: &str, value: f64) {
        self.histograms
            .entry(name.to_owned())
            .or_insert_with(|| Histogram::with_bounds(&Histogram::time_ms_bounds()))
            .record(value);
    }

    /// Read a histogram.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Snapshot the whole registry as JSON (names in sorted order).
    pub fn to_json(&self) -> JsonValue {
        let counters = self
            .counters
            .iter()
            .fold(JsonValue::obj(), |acc, (k, &v)| acc.set(k, v));
        let gauges = self
            .gauges
            .iter()
            .fold(JsonValue::obj(), |acc, (k, &v)| acc.set(k, v));
        let histograms = self
            .histograms
            .iter()
            .fold(JsonValue::obj(), |acc, (k, h)| acc.set(k, h.to_json()));
        JsonValue::obj()
            .set("counters", counters)
            .set("gauges", gauges)
            .set("histograms", histograms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucketing_is_upper_edge_inclusive_with_overflow() {
        let mut h = Histogram::with_bounds(&[1.0, 2.0, 5.0]);
        assert_eq!(h.bucket_index(0.5), 0);
        assert_eq!(h.bucket_index(1.0), 0);
        assert_eq!(h.bucket_index(1.0001), 1);
        assert_eq!(h.bucket_index(5.0), 2);
        assert_eq!(h.bucket_index(99.0), 3);
        for v in [0.5, 1.0, 3.0, 100.0] {
            h.record(v);
        }
        assert_eq!(h.counts(), &[2, 0, 1, 1]);
        assert_eq!(h.count(), 4);
        assert!((h.mean() - 26.125).abs() < 1e-12);
    }

    #[test]
    fn default_time_edges_are_ascending_and_span_the_platforms() {
        let edges = Histogram::time_ms_bounds();
        assert!(edges.windows(2).all(|w| w[0] < w[1]));
        assert!(edges[0] <= 0.001);
        assert!(*edges.last().unwrap() >= 10_000.0);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn unsorted_edges_are_rejected() {
        Histogram::with_bounds(&[1.0, 1.0]);
    }

    #[test]
    fn registry_accumulates_and_snapshots_sorted() {
        let mut m = MetricsRegistry::new();
        m.counter_add("b.misses", 2);
        m.counter_add("a.launches", 1);
        m.counter_add("b.misses", 3);
        m.gauge_set("util", 0.25);
        m.histogram_record("slack_ms", 3.0);
        assert_eq!(m.counter("b.misses"), 5);
        assert_eq!(m.gauge("util"), Some(0.25));
        assert_eq!(m.histogram("slack_ms").unwrap().count(), 1);
        let json = m.to_json().to_compact();
        let a = json.find("a.launches").unwrap();
        let b = json.find("b.misses").unwrap();
        assert!(a < b, "counters must serialize in name order");
    }

    #[test]
    fn empty_histogram_snapshot_has_zero_min_max() {
        let h = Histogram::with_bounds(&[1.0]);
        let s = h.to_json().to_compact();
        assert!(s.contains("\"min\":0.0"));
        assert!(s.contains("\"max\":0.0"));
    }
}
