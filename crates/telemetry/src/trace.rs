//! Chrome `trace_event` export.
//!
//! Produces the JSON object format understood by `chrome://tracing` and
//! Perfetto: one `M` (metadata) event naming each track's process, then the
//! recorded spans as `X` (complete) events and instants as `i` events.
//! Timestamps are microseconds; we print them from integer picoseconds with
//! exactly six fractional digits, so the output is byte-identical across
//! runs whenever the event log is.

use crate::json::escape_into;
use crate::recorder::{ArgValue, Inner};
use sim_clock::{SimDuration, SimInstant};
use std::fmt::Write as _;

/// Microseconds with six exact fractional digits, from integer picoseconds.
fn us_from_ps(out: &mut String, ps: u64) {
    let whole = ps / 1_000_000;
    let frac = ps % 1_000_000;
    let _ = write!(out, "{whole}.{frac:06}");
}

fn ts(out: &mut String, at: SimInstant) {
    us_from_ps(out, at.elapsed_since_epoch().as_picos());
}

fn dur(out: &mut String, d: SimDuration) {
    us_from_ps(out, d.as_picos());
}

fn arg_value(out: &mut String, v: &ArgValue) {
    match v {
        ArgValue::U64(n) => {
            let _ = write!(out, "{n}");
        }
        ArgValue::F64(x) => out.push_str(&crate::json::fmt_f64(*x)),
        ArgValue::Str(s) => escape_into(out, s),
    }
}

/// Render the whole event log as a Chrome trace document.
pub(crate) fn chrome_trace(inner: &mut Inner) -> String {
    let mut out = String::with_capacity(256 + inner.spans.len() * 160);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if first {
            first = false;
        } else {
            out.push(',');
        }
        out.push('\n');
    };

    // Process-name metadata: one process per track, pid = index + 1.
    for (i, name) in inner.tracks.iter().enumerate() {
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"pid\":{},\"tid\":0,\"name\":\"process_name\",\"args\":{{\"name\":",
            i + 1
        );
        escape_into(&mut out, name);
        out.push_str("}}");
    }

    for span in &inner.spans {
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"ph\":\"X\",\"pid\":{},\"tid\":0,\"name\":",
            span.track + 1
        );
        escape_into(&mut out, &span.name);
        out.push_str(",\"cat\":");
        escape_into(&mut out, &span.category);
        out.push_str(",\"ts\":");
        ts(&mut out, span.start);
        out.push_str(",\"dur\":");
        dur(&mut out, span.duration);
        if !span.args.is_empty() {
            out.push_str(",\"args\":{");
            for (i, (key, value)) in span.args.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(&mut out, key);
                out.push(':');
                arg_value(&mut out, value);
            }
            out.push('}');
        }
        out.push('}');
    }

    for inst in &inner.instants {
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"ph\":\"i\",\"s\":\"p\",\"pid\":{},\"tid\":0,\"name\":",
            inst.track + 1
        );
        escape_into(&mut out, &inst.name);
        out.push_str(",\"cat\":");
        escape_into(&mut out, &inst.category);
        out.push_str(",\"ts\":");
        ts(&mut out, inst.at);
        out.push('}');
    }

    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

#[cfg(test)]
mod tests {
    use crate::Recorder;
    use sim_clock::{SimDuration, SimInstant};

    #[test]
    fn timestamps_are_exact_microseconds() {
        let r = Recorder::enabled();
        let t = r.track("device");
        r.span(
            t,
            "kernel:Track",
            "kernel",
            SimInstant::at(SimDuration::from_picos(1_234_567)),
            SimDuration::from_picos(7),
        );
        let trace = r.chrome_trace();
        assert!(trace.contains("\"ts\":1.234567"), "{trace}");
        assert!(trace.contains("\"dur\":0.000007"), "{trace}");
    }

    #[test]
    fn disabled_recorder_exports_an_empty_document() {
        let r = Recorder::disabled();
        assert_eq!(r.chrome_trace(), "");
    }
}
