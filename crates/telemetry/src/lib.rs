//! Simulated-time telemetry: spans, metrics and Chrome traces.
//!
//! The paper's whole argument is *where the cycles go* on each platform;
//! this crate makes that inspectable. Architecture models record spans on
//! named tracks (in their own deterministic simulated time), count events,
//! and fill fixed-bucket histograms; the result exports as either a
//! Chrome `trace_event` document — load it in `chrome://tracing` or
//! Perfetto and an 8-second major cycle renders as a flame chart of
//! periods → tasks → backend-internal phases — or a structured metrics
//! JSON snapshot.
//!
//! Design constraints, in order:
//!
//! 1. **Zero-cost when disabled.** [`Recorder::disabled`] is a `None`
//!    behind a handle; every call short-circuits on one branch.
//! 2. **No globals.** A [`Recorder`] is passed by `&` or cheaply cloned;
//!    independent sweeps use independent recorders, even in parallel.
//! 3. **Deterministic output.** Timestamps are integer picoseconds of
//!    simulated time, floats print in shortest round-trip form, and metric
//!    names serialize sorted — equal-seed runs export byte-identical files.
//! 4. **No dependencies.** Std only, like the rest of the workspace, so
//!    offline and vendored builds never fetch from a registry.

pub mod json;
pub mod metrics;
pub mod parse;
mod recorder;
mod trace;

pub use json::JsonValue;
pub use metrics::{Histogram, MetricsRegistry};
pub use parse::parse_json;
pub use recorder::{ArgValue, Recorder, TrackId};

#[cfg(test)]
mod integration_tests {
    use super::*;
    use sim_clock::{SimDuration, SimInstant};

    #[test]
    fn same_event_sequence_exports_byte_identical_documents() {
        let run = || {
            let r = Recorder::enabled();
            let dev = r.track("gpu: Titan X");
            let exec = r.track("rt-sched executive");
            let mut now = SimInstant::EPOCH;
            for i in 0..10u64 {
                let d = SimDuration::from_nanos(100 + 7 * i);
                r.span_with_args(
                    dev,
                    &format!("kernel:{i}"),
                    "kernel",
                    now,
                    d,
                    vec![("warps", ArgValue::U64(i))],
                );
                r.span(exec, "period", "period", now, d * 2);
                r.histogram_record("slack_ms", d);
                r.counter_add("launches", 1);
                now += d;
            }
            (r.chrome_trace(), r.metrics_json())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn chrome_trace_is_loadable_structure() {
        let r = Recorder::enabled();
        let t = r.track("ap: STARAN");
        r.span(
            t,
            "ap:search",
            "ap",
            SimInstant::EPOCH,
            SimDuration::from_micros(3),
        );
        let doc = r.chrome_trace();
        assert!(doc.starts_with("{\"traceEvents\":["));
        assert!(doc.trim_end().ends_with("\"displayTimeUnit\":\"ms\"}"));
        assert!(doc.contains("\"process_name\""));
        assert!(doc.contains("\"ap:search\""));
    }
}
