//! Scoped-thread MIMD executor with measured timing.

use sim_clock::{SimDuration, SimInstant, Stopwatch};
use std::sync::atomic::{AtomicU64, Ordering};
use telemetry::{Recorder, TrackId};

/// A shared-memory MIMD executor over a fixed number of worker threads.
///
/// Work is partitioned statically (contiguous chunks, as the Xeon
/// implementation in the prior work did) and executed with
/// `std::thread::scope` threads; each call is one barrier-synchronized phase
/// — the call does not return until all workers finish, which is exactly
/// the synchronization pattern whose straggler effects the paper blames for
/// MIMD deadline misses. Timing is *measured* wall-clock time.
pub struct MimdPool {
    threads: usize,
    recorder: Recorder,
    track: TrackId,
    /// Cumulative phase time in picoseconds: the pool's own trace clock, so
    /// successive barrier phases lay out end to end on the pool's track.
    /// Atomic because the phase methods take `&self`.
    clock_ps: AtomicU64,
}

impl MimdPool {
    /// A pool with `threads` workers (the paper's Xeon has 16).
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "a pool needs at least one thread");
        MimdPool {
            threads,
            recorder: Recorder::disabled(),
            track: TrackId::default(),
            clock_ps: AtomicU64::new(0),
        }
    }

    /// A pool sized for measured host backends: honors the
    /// [`MimdPool::measure_threads`] pin, falling back to available
    /// parallelism.
    pub fn host_sized() -> Self {
        MimdPool::new(Self::measure_threads())
    }

    /// Thread count for measured host backends: the `ATM_MEASURE_THREADS`
    /// environment variable when set to a positive integer (the CI pin that
    /// makes measured runs reproducible on small containers), otherwise the
    /// host's available parallelism, otherwise 4.
    pub fn measure_threads() -> usize {
        if let Ok(v) = std::env::var("ATM_MEASURE_THREADS") {
            if let Ok(t) = v.trim().parse::<usize>() {
                if t >= 1 {
                    return t;
                }
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    }

    /// Worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Attach a telemetry recorder: each barrier phase becomes a span on a
    /// `"mimd: N threads"` track (measured wall time, laid out on the
    /// pool's cumulative clock) and bumps the `mimd.barrier_phases` counter
    /// and the `mimd.phase_ms` histogram.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.track = recorder.track(&format!("mimd: {} threads", self.threads));
        self.recorder = recorder;
    }

    /// Book one completed barrier phase onto the trace.
    fn book(&self, name: &str, d: SimDuration) {
        if !self.recorder.is_enabled() {
            return;
        }
        let start = self.clock_ps.fetch_add(d.as_picos(), Ordering::Relaxed);
        self.recorder.span_with_args(
            self.track,
            name,
            "mimd.phase",
            SimInstant::at(SimDuration::from_picos(start)),
            d,
            vec![("threads", self.threads.into())],
        );
        self.recorder.counter_add("mimd.barrier_phases", 1);
        self.recorder.histogram_record("mimd.phase_ms", d);
    }

    /// One barrier phase: apply `f(i)` for every `i in 0..n`, partitioned
    /// contiguously over the workers. Returns measured wall time.
    ///
    /// `f` must be safe to call concurrently for distinct `i`; shared
    /// state must synchronize internally (see [`crate::LockedVec`]).
    pub fn parallel_for<F>(&self, n: usize, f: F) -> SimDuration
    where
        F: Fn(usize) + Sync,
    {
        let d = self.run_static(n, &f);
        self.book("parallel_for", d);
        d
    }

    /// The static-partition phase body, shared by [`MimdPool::parallel_for`]
    /// and [`MimdPool::run_phases`] (which books each phase under its own
    /// name rather than the generic one).
    fn run_static<F>(&self, n: usize, f: &F) -> SimDuration
    where
        F: Fn(usize) + Sync,
    {
        let sw = Stopwatch::start();
        if n == 0 {
            return sw.elapsed();
        }
        if self.threads == 1 {
            for i in 0..n {
                f(i);
            }
            return sw.elapsed();
        }
        let chunk = n.div_ceil(self.threads);
        std::thread::scope(|s| {
            for t in 0..self.threads {
                let start = t * chunk;
                if start >= n {
                    break;
                }
                let end = (start + chunk).min(n);
                let f = &f;
                s.spawn(move || {
                    for i in start..end {
                        f(i);
                    }
                });
            }
        });
        sw.elapsed()
    }

    /// One barrier phase over mutable data: apply `f(i, &mut data[i])` for
    /// every element, partitioned contiguously over the workers. Elements
    /// are distributed disjointly (chunked `split_at_mut`), so `f` gets
    /// exclusive access to its element with no locking. Returns measured
    /// wall time.
    pub fn parallel_for_mut<T, F>(&self, data: &mut [T], f: F) -> SimDuration
    where
        T: Send,
        F: Fn(usize, &mut T) + Sync,
    {
        let d = self.run_static_mut(data, f);
        self.book("parallel_for_mut", d);
        d
    }

    fn run_static_mut<T, F>(&self, data: &mut [T], f: F) -> SimDuration
    where
        T: Send,
        F: Fn(usize, &mut T) + Sync,
    {
        let sw = Stopwatch::start();
        let n = data.len();
        if n == 0 {
            return sw.elapsed();
        }
        if self.threads == 1 {
            for (i, item) in data.iter_mut().enumerate() {
                f(i, item);
            }
            return sw.elapsed();
        }
        let chunk = n.div_ceil(self.threads);
        std::thread::scope(|s| {
            let f = &f;
            for (t, slice) in data.chunks_mut(chunk).enumerate() {
                let start = t * chunk;
                s.spawn(move || {
                    for (off, item) in slice.iter_mut().enumerate() {
                        f(start + off, item);
                    }
                });
            }
        });
        sw.elapsed()
    }

    /// One barrier phase with *dynamic* scheduling: workers pull fixed-size
    /// chunks of the index space from a shared atomic counter until it is
    /// exhausted. Better load balance than the static split when per-item
    /// cost is skewed (e.g. collision resolution: most aircraft scan once,
    /// conflicted ones rescan up to 13×), at the price of contention on the
    /// counter — the classic MIMD scheduling trade-off, exposed for the
    /// scheduling ablation.
    pub fn parallel_for_dynamic<F>(&self, n: usize, chunk: usize, f: F) -> SimDuration
    where
        F: Fn(usize) + Sync,
    {
        let d = self.run_dynamic(n, chunk, f);
        self.book("parallel_for_dynamic", d);
        d
    }

    fn run_dynamic<F>(&self, n: usize, chunk: usize, f: F) -> SimDuration
    where
        F: Fn(usize) + Sync,
    {
        use std::sync::atomic::AtomicUsize;
        assert!(chunk > 0, "chunk size must be positive");
        let sw = Stopwatch::start();
        if n == 0 {
            return sw.elapsed();
        }
        if self.threads == 1 {
            for i in 0..n {
                f(i);
            }
            return sw.elapsed();
        }
        let next = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..self.threads {
                let f = &f;
                let next = &next;
                s.spawn(move || loop {
                    let start = next.fetch_add(chunk, Ordering::Relaxed);
                    if start >= n {
                        break;
                    }
                    for i in start..(start + chunk).min(n) {
                        f(i);
                    }
                });
            }
        });
        sw.elapsed()
    }

    /// One barrier phase that *returns* per-chunk results: the index space
    /// `0..n` splits into at most `threads` contiguous chunks (the same
    /// `div_ceil` partition as [`MimdPool::parallel_for`]), each worker maps
    /// its chunk through `f(chunk_index, range)`, and the results come back
    /// in chunk order — deterministic regardless of which worker finishes
    /// first, which is what lets callers fold order-sensitive reductions
    /// without perturbing results. A single-thread pool (and `n == 0`) runs
    /// inline.
    ///
    /// Unlike the `parallel_for` family this phase is *not* booked to the
    /// telemetry recorder: it is the inner-scan primitive of the measured
    /// backends, called once per rotation rescan of every aircraft — far
    /// too fine-grained for per-phase spans.
    pub fn map_chunks<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, std::ops::Range<usize>) -> R + Sync,
    {
        if n == 0 {
            return Vec::new();
        }
        if self.threads == 1 {
            return vec![f(0, 0..n)];
        }
        let chunk = n.div_ceil(self.threads);
        let chunks = n.div_ceil(chunk);
        let mut out: Vec<Option<R>> = Vec::with_capacity(chunks);
        out.resize_with(chunks, || None);
        std::thread::scope(|s| {
            for (t, slot) in out.iter_mut().enumerate() {
                let start = t * chunk;
                let end = (start + chunk).min(n);
                let f = &f;
                s.spawn(move || {
                    *slot = Some(f(t, start..end));
                });
            }
        });
        out.into_iter()
            .map(|r| r.expect("every chunk completes under the scope barrier"))
            .collect()
    }

    /// Run several named phases back to back with a barrier between each;
    /// returns the measured duration of each phase.
    pub fn run_phases<'a, F>(
        &self,
        n: usize,
        phases: &mut [(&'a str, F)],
    ) -> Vec<(&'a str, SimDuration)>
    where
        F: Fn(usize) + Sync,
    {
        phases
            .iter()
            .map(|(name, f)| {
                let d = self.run_static(n, f);
                self.book(name, d);
                (*name, d)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn visits_every_index_exactly_once() {
        let pool = MimdPool::new(4);
        let n = 10_000;
        let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        pool.parallel_for(n, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = MimdPool::new(1);
        let sum = AtomicU64::new(0);
        pool.parallel_for(100, |i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 4950);
    }

    #[test]
    fn zero_items_is_a_no_op() {
        let pool = MimdPool::new(8);
        let d = pool.parallel_for(0, |_| panic!("must not be called"));
        assert!(d < SimDuration::from_millis(100));
    }

    #[test]
    fn more_threads_than_items_still_covers_all() {
        let pool = MimdPool::new(16);
        let hits: Vec<AtomicU64> = (0..5).map(|_| AtomicU64::new(0)).collect();
        pool.parallel_for(5, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn phases_run_in_order_with_barriers() {
        let pool = MimdPool::new(4);
        let n = 1000;
        let a: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        // Phase 2 reads what phase 1 wrote for the *same index set*; with a
        // barrier between phases, every read must observe phase 1's write.
        pool.parallel_for(n, |i| {
            a[i].store(1, Ordering::Release);
        });
        let ok = AtomicU64::new(0);
        pool.parallel_for(n, |i| {
            if a[i].load(Ordering::Acquire) == 1 {
                ok.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert_eq!(ok.load(Ordering::Relaxed), n as u64);
    }

    #[test]
    fn run_phases_reports_each_phase() {
        let pool = MimdPool::new(2);
        let counter = AtomicU64::new(0);
        let bump = |_: usize| {
            counter.fetch_add(1, Ordering::Relaxed);
        };
        let mut phases = [("p1", &bump as &(dyn Fn(usize) + Sync)), ("p2", &bump)];
        let report = pool.run_phases(10, &mut phases);
        assert_eq!(report.len(), 2);
        assert_eq!(report[0].0, "p1");
        assert_eq!(counter.load(Ordering::Relaxed), 20);
    }

    #[test]
    fn host_sized_pool_has_positive_threads() {
        assert!(MimdPool::host_sized().threads() >= 1);
        assert!(MimdPool::measure_threads() >= 1);
    }

    #[test]
    fn map_chunks_covers_the_range_in_chunk_order() {
        for threads in [1, 3, 8, 16] {
            let pool = MimdPool::new(threads);
            let n = 1001;
            let parts = pool.map_chunks(n, |t, range| (t, range));
            assert!(parts.len() <= threads);
            // Chunks are contiguous, ordered, and cover 0..n exactly.
            let mut next = 0usize;
            for (k, (t, range)) in parts.iter().enumerate() {
                assert_eq!(*t, k);
                assert_eq!(range.start, next);
                next = range.end;
            }
            assert_eq!(next, n);
        }
    }

    #[test]
    fn map_chunks_reduction_is_thread_count_invariant() {
        let n = 10_000usize;
        let sum_with = |threads: usize| -> u64 {
            MimdPool::new(threads)
                .map_chunks(n, |_, range| range.map(|i| i as u64).sum::<u64>())
                .into_iter()
                .sum()
        };
        let expected = (n as u64 - 1) * n as u64 / 2;
        for threads in [1, 2, 5, 13] {
            assert_eq!(sum_with(threads), expected);
        }
    }

    #[test]
    fn map_chunks_empty_range_spawns_nothing() {
        let parts = MimdPool::new(4).map_chunks(0, |_, _| panic!("must not run"));
        assert!(parts.is_empty());
    }

    #[test]
    fn parallel_for_mut_updates_every_element_with_its_index() {
        let pool = MimdPool::new(4);
        let mut data = vec![0usize; 5_000];
        pool.parallel_for_mut(&mut data, |i, v| *v = i * 2);
        assert!(data.iter().enumerate().all(|(i, &v)| v == i * 2));
    }

    #[test]
    fn parallel_for_mut_handles_empty_and_tiny_slices() {
        let pool = MimdPool::new(8);
        let mut empty: Vec<u8> = vec![];
        pool.parallel_for_mut(&mut empty, |_, _| panic!("must not run"));
        let mut one = vec![7u8];
        pool.parallel_for_mut(&mut one, |i, v| *v += i as u8 + 1);
        assert_eq!(one, vec![8]);
    }

    #[test]
    fn dynamic_scheduling_visits_every_index_once() {
        let pool = MimdPool::new(4);
        let n = 10_000;
        let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        pool.parallel_for_dynamic(n, 64, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn dynamic_scheduling_handles_edge_cases() {
        let pool = MimdPool::new(8);
        pool.parallel_for_dynamic(0, 16, |_| panic!("must not run"));
        let sum = AtomicU64::new(0);
        pool.parallel_for_dynamic(3, 100, |i| {
            sum.fetch_add(i as u64 + 1, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 6);
        // Single-thread pool runs inline.
        let sum1 = AtomicU64::new(0);
        MimdPool::new(1).parallel_for_dynamic(100, 7, |i| {
            sum1.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum1.load(Ordering::Relaxed), 4950);
    }

    #[test]
    #[should_panic(expected = "chunk size must be positive")]
    fn dynamic_scheduling_rejects_zero_chunks() {
        MimdPool::new(2).parallel_for_dynamic(10, 0, |_| {});
    }

    #[test]
    fn recording_pool_books_every_barrier_phase() {
        let recorder = telemetry::Recorder::enabled();
        let mut pool = MimdPool::new(2);
        pool.set_recorder(recorder.clone());
        pool.parallel_for(100, |_| {});
        let mut data = vec![0u8; 16];
        pool.parallel_for_mut(&mut data, |_, v| *v += 1);
        pool.parallel_for_dynamic(64, 8, |_| {});
        let bump = |_: usize| {};
        pool.run_phases(
            10,
            &mut [("alpha", &bump as &(dyn Fn(usize) + Sync)), ("beta", &bump)],
        );
        assert_eq!(recorder.counter("mimd.barrier_phases"), 5);
        assert_eq!(recorder.spans_in_category("mimd.phase"), 5);
    }

    #[test]
    fn disabled_pool_records_nothing() {
        let pool = MimdPool::new(2);
        pool.parallel_for(10, |_| {});
        // No recorder attached: the phase still runs and times normally.
        assert_eq!(pool.threads(), 2);
    }

    #[test]
    fn parallel_for_mut_single_thread_matches_parallel() {
        let mut a = vec![1u64; 999];
        let mut b = vec![1u64; 999];
        MimdPool::new(1).parallel_for_mut(&mut a, |i, v| *v += i as u64);
        MimdPool::new(7).parallel_for_mut(&mut b, |i, v| *v += i as u64);
        assert_eq!(a, b);
    }
}
