//! Lock-per-record shared storage with contention accounting.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};
use telemetry::Recorder;

/// A vector of records, each behind its own mutex, with global counters for
/// acquisitions and contended acquisitions.
///
/// This is the data layout the prior work's Xeon implementation used for
/// the shared aircraft database: fine-grained record locking so different
/// cores can update different aircraft concurrently — and the source of the
/// contention that made its timing unpredictable. The contention counter
/// feeds both the measured backend's reports and the calibration of the
/// analytic [`crate::XeonModel`].
pub struct LockedVec<T> {
    slots: Vec<Mutex<T>>,
    acquisitions: AtomicU64,
    contended: AtomicU64,
    recorder: Recorder,
}

impl<T> LockedVec<T> {
    /// Wrap a vector of records.
    pub fn new(items: Vec<T>) -> Self {
        LockedVec {
            slots: items.into_iter().map(Mutex::new).collect(),
            acquisitions: AtomicU64::new(0),
            contended: AtomicU64::new(0),
            recorder: Recorder::disabled(),
        }
    }

    /// Attach a telemetry recorder: every contended acquisition (a lock
    /// wait — the thread found the mutex held and had to block) bumps the
    /// `mimd.lock_waits` counter. Uncontended fast-path acquisitions stay
    /// counter-only on the local atomics so the hot path never touches the
    /// recorder.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when there are no records.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Lock record `i`, counting the acquisition and whether it contended.
    pub fn lock(&self, i: usize) -> MutexGuard<'_, T> {
        self.acquisitions.fetch_add(1, Ordering::Relaxed);
        if let Ok(guard) = self.slots[i].try_lock() {
            return guard;
        }
        self.contended.fetch_add(1, Ordering::Relaxed);
        self.recorder.counter_add("mimd.lock_waits", 1);
        self.slots[i].lock().expect("record lock poisoned")
    }

    /// Lock records `i` and `j` (distinct) in address order, avoiding the
    /// AB/BA deadlock when two threads pair the same two aircraft.
    pub fn lock_pair(&self, i: usize, j: usize) -> (MutexGuard<'_, T>, MutexGuard<'_, T>) {
        assert_ne!(i, j, "lock_pair requires distinct indices");
        if i < j {
            let a = self.lock(i);
            let b = self.lock(j);
            (a, b)
        } else {
            let b = self.lock(j);
            let a = self.lock(i);
            (a, b)
        }
    }

    /// Total lock acquisitions so far.
    pub fn acquisitions(&self) -> u64 {
        self.acquisitions.load(Ordering::Relaxed)
    }

    /// Acquisitions that found the lock held (contended).
    pub fn contended(&self) -> u64 {
        self.contended.load(Ordering::Relaxed)
    }

    /// Reset the counters.
    pub fn reset_counters(&self) {
        self.acquisitions.store(0, Ordering::Relaxed);
        self.contended.store(0, Ordering::Relaxed);
    }

    /// Tear down and return the records (requires exclusive ownership).
    pub fn into_inner(self) -> Vec<T> {
        self.slots
            .into_iter()
            .map(|m| m.into_inner().expect("record lock poisoned"))
            .collect()
    }

    /// Snapshot all records by cloning each under its lock.
    pub fn snapshot(&self) -> Vec<T>
    where
        T: Clone,
    {
        (0..self.len()).map(|i| self.lock(i).clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::MimdPool;

    #[test]
    fn lock_allows_mutation() {
        let v = LockedVec::new(vec![0u64; 4]);
        *v.lock(2) += 7;
        assert_eq!(v.into_inner(), vec![0, 0, 7, 0]);
    }

    #[test]
    fn counts_acquisitions() {
        let v = LockedVec::new(vec![(); 3]);
        drop(v.lock(0));
        drop(v.lock(1));
        drop(v.lock(1));
        assert_eq!(v.acquisitions(), 3);
        v.reset_counters();
        assert_eq!(v.acquisitions(), 0);
    }

    #[test]
    fn concurrent_increments_do_not_lose_updates() {
        let v = LockedVec::new(vec![0u64; 8]);
        let pool = MimdPool::new(8);
        pool.parallel_for(10_000, |i| {
            *v.lock(i % 8) += 1;
        });
        let totals = v.snapshot();
        assert_eq!(totals.iter().sum::<u64>(), 10_000);
    }

    #[test]
    fn hot_lock_registers_contention() {
        // Deterministic contention (robust even on a single-core host): one
        // thread holds the lock across a rendezvous while another acquires.
        use std::sync::atomic::{AtomicBool, Ordering};
        let recorder = Recorder::enabled();
        let mut v = LockedVec::new(vec![0u64; 1]);
        v.set_recorder(recorder.clone());
        let holding = AtomicBool::new(false);
        std::thread::scope(|s| {
            s.spawn(|| {
                let mut g = v.lock(0);
                holding.store(true, Ordering::Release);
                // Hold until the other thread has surely started waiting.
                std::thread::sleep(std::time::Duration::from_millis(30));
                *g += 1;
            });
            while !holding.load(Ordering::Acquire) {
                std::hint::spin_loop();
            }
            *v.lock(0) += 1; // must contend: the holder is asleep
        });
        assert_eq!(*v.lock(0), 2);
        assert!(v.contended() > 0, "expected contention on a held lock");
        assert_eq!(
            recorder.counter("mimd.lock_waits"),
            v.contended(),
            "every lock wait must reach the telemetry counter"
        );
    }

    #[test]
    fn lock_pair_orders_consistently() {
        let v = LockedVec::new(vec![1u64, 2]);
        {
            let (a, b) = v.lock_pair(1, 0);
            assert_eq!(*a, 2);
            assert_eq!(*b, 1);
        }
        let (a, b) = v.lock_pair(0, 1);
        assert_eq!(*a, 1);
        assert_eq!(*b, 2);
    }

    #[test]
    fn lock_pair_under_concurrency_does_not_deadlock() {
        let v = LockedVec::new(vec![0u64; 16]);
        let pool = MimdPool::new(8);
        pool.parallel_for(20_000, |i| {
            let a = i % 16;
            let b = (i * 7 + 1) % 16;
            if a != b {
                let (mut x, mut y) = v.lock_pair(a, b);
                *x += 1;
                *y += 1;
            }
        });
        // Completion without deadlock is the assertion; sanity-check sums.
        assert!(v.snapshot().iter().sum::<u64>() > 0);
    }

    #[test]
    #[should_panic(expected = "distinct indices")]
    fn lock_pair_rejects_same_index() {
        let v = LockedVec::new(vec![0u64; 2]);
        let _guards = v.lock_pair(1, 1);
    }
}
