//! Deterministic analytic model of the prior work's 16-core Xeon.

use sim_clock::{OpClass, OpCounter, SimDuration};

/// Abstract work summary of one task execution, fed to the [`XeonModel`].
#[derive(Clone, Debug, Default)]
pub struct WorkEstimate {
    /// Total abstract operations across all logical units of work (from an
    /// instrumented run of the shared task algorithms).
    pub ops: OpCounter,
    /// Record-lock acquisitions the shared-memory implementation performs.
    pub lock_acquisitions: u64,
    /// Barrier synchronizations between phases.
    pub barriers: u64,
    /// Problem size (aircraft count) — drives the contention multiplier.
    pub n: usize,
}

/// An analytic shared-memory multiprocessor timing model.
///
/// The model is deliberately simple and fully deterministic given a seed:
///
/// ```text
/// weighted_ops   = Σ ops[class] · cpu_weight[class]
/// compute_time   = (serial_fraction + (1 − serial_fraction)/cores)
///                  · weighted_ops / (ops_per_cycle · clock)
/// memory_time    = bytes / bandwidth
/// base           = max(compute_time, memory_time)
///                  + locks·lock_cost + barriers·barrier_cost
/// contention     = 1 + (n / contention_n0)^contention_alpha
/// time           = base · contention · jitter(seed)
/// ```
///
/// The super-linear `contention` term is the model of what [12, 13] report
/// empirically: coherence traffic, lock convoys and scheduling interference
/// grow faster than the useful work, which is why the MIMD curve pulls away
/// from every deterministic architecture and starts missing deadlines. The
/// `jitter` factor reproduces MIMD *unpredictability*: different seeds
/// perturb the time by up to `jitter_frac`, the way repeated real runs
/// scatter.
#[derive(Clone, Debug, PartialEq)]
pub struct XeonModel {
    /// Name used in reports.
    pub name: &'static str,
    /// Core count.
    pub cores: u32,
    /// Core clock in MHz.
    pub clock_mhz: u32,
    /// Sustained abstract ops per core per cycle (superscalar factor).
    pub ops_per_cycle: f64,
    /// Memory bandwidth in MB/s.
    pub mem_bandwidth_mb_s: u64,
    /// Cost of one uncontended lock acquisition, nanoseconds.
    pub lock_ns: f64,
    /// Cost of one barrier across all cores, nanoseconds.
    pub barrier_ns: f64,
    /// Amdahl serial fraction of each task.
    pub serial_fraction: f64,
    /// Contention knee: problem size where interference ≈ doubles time.
    pub contention_n0: f64,
    /// Contention growth exponent.
    pub contention_alpha: f64,
    /// Maximum fractional run-to-run jitter (e.g. 0.35 = ±35 % spread).
    pub jitter_frac: f64,
}

impl XeonModel {
    /// The paper's comparison machine: a 16-core Intel Xeon (2012 era,
    /// ~3 GHz, ~40 GB/s aggregate memory bandwidth).
    pub fn xeon_16_core() -> XeonModel {
        XeonModel {
            name: "Intel Xeon 16-core",
            cores: 16,
            clock_mhz: 3_000,
            ops_per_cycle: 2.0,
            mem_bandwidth_mb_s: 40_000,
            lock_ns: 40.0,
            barrier_ns: 3_000.0,
            serial_fraction: 0.03,
            contention_n0: 2_000.0,
            contention_alpha: 1.5,
            jitter_frac: 0.35,
        }
    }

    /// CPU reciprocal-throughput weight of one abstract op class.
    fn weight(class: OpClass) -> f64 {
        match class {
            OpClass::IntAlu => 1.0,
            OpClass::FpAdd => 1.0,
            OpClass::FpMul => 1.0,
            OpClass::FpDiv => 20.0,
            OpClass::FpSqrt => 20.0,
            OpClass::Sfu => 40.0,   // libm sin/cos
            OpClass::Branch => 1.5, // average including mispredictions
            OpClass::Sync => 0.0,   // priced via WorkEstimate::barriers
        }
    }

    /// Weighted op count of a counter under the CPU weights.
    pub fn weighted_ops(ops: &OpCounter) -> f64 {
        use sim_clock::cost::ALL_OP_CLASSES;
        ALL_OP_CLASSES
            .iter()
            .map(|&c| ops.count(c) as f64 * Self::weight(c))
            .sum()
    }

    /// The contention multiplier at problem size `n`.
    pub fn contention_factor(&self, n: usize) -> f64 {
        1.0 + (n as f64 / self.contention_n0).powf(self.contention_alpha)
    }

    /// Deterministic jitter multiplier in `[1, 1 + jitter_frac]` derived
    /// from `seed` (splitmix64).
    pub fn jitter(&self, seed: u64) -> f64 {
        let mut z = seed.wrapping_add(0x9E3779B97F4A7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^= z >> 31;
        let unit = (z >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
        1.0 + unit * self.jitter_frac
    }

    /// Modeled execution time of one task.
    pub fn time_for(&self, work: &WorkEstimate, seed: u64) -> SimDuration {
        let weighted = Self::weighted_ops(&work.ops);
        let cycles = weighted / self.ops_per_cycle;
        let scaling = self.serial_fraction + (1.0 - self.serial_fraction) / self.cores as f64;
        let compute_secs = cycles * scaling / (self.clock_mhz as f64 * 1.0e6);
        let memory_secs = work.ops.total_bytes() as f64 / (self.mem_bandwidth_mb_s as f64 * 1.0e6);
        let sync_secs = work.lock_acquisitions as f64 * self.lock_ns * 1.0e-9
            + work.barriers as f64 * self.barrier_ns * 1.0e-9;
        let base = compute_secs.max(memory_secs) + sync_secs;
        let total = base * self.contention_factor(work.n) * self.jitter(seed);
        SimDuration::from_secs_f64(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_clock::CostSink;

    fn work(n: usize, flops: u64) -> WorkEstimate {
        let mut ops = OpCounter::new();
        ops.fadd(flops);
        WorkEstimate {
            ops,
            lock_acquisitions: 0,
            barriers: 0,
            n,
        }
    }

    #[test]
    fn time_grows_with_work() {
        let m = XeonModel::xeon_16_core();
        let t1 = m.time_for(&work(100, 1_000_000), 0);
        let t2 = m.time_for(&work(100, 2_000_000), 0);
        assert!(t2 > t1);
    }

    #[test]
    fn contention_grows_superlinearly() {
        let m = XeonModel::xeon_16_core();
        let c1 = m.contention_factor(2_000);
        let c2 = m.contention_factor(8_000);
        assert!((c1 - 2.0).abs() < 1e-9, "knee should double time: {c1}");
        assert!(c2 > 2.0 * c1, "growth must be super-linear: {c1} -> {c2}");
    }

    #[test]
    fn same_seed_is_deterministic_different_seed_jitters() {
        let m = XeonModel::xeon_16_core();
        let w = work(5_000, 10_000_000);
        assert_eq!(m.time_for(&w, 42), m.time_for(&w, 42));
        let times: Vec<_> = (0..20).map(|s| m.time_for(&w, s)).collect();
        let distinct: std::collections::HashSet<_> = times.iter().collect();
        assert!(
            distinct.len() > 10,
            "different seeds should scatter the time"
        );
    }

    #[test]
    fn jitter_is_bounded() {
        let m = XeonModel::xeon_16_core();
        for seed in 0..1000 {
            let j = m.jitter(seed);
            assert!(
                (1.0..=1.0 + m.jitter_frac).contains(&j),
                "jitter {j} out of range"
            );
        }
    }

    #[test]
    fn expensive_ops_cost_more_than_cheap_ones() {
        let m = XeonModel::xeon_16_core();
        let mut cheap = OpCounter::new();
        cheap.fadd(1_000_000);
        let mut dear = OpCounter::new();
        dear.fdiv(1_000_000);
        let t_cheap = m.time_for(
            &WorkEstimate {
                ops: cheap,
                n: 10,
                ..Default::default()
            },
            0,
        );
        let t_dear = m.time_for(
            &WorkEstimate {
                ops: dear,
                n: 10,
                ..Default::default()
            },
            0,
        );
        assert!(t_dear > t_cheap * 10);
    }

    #[test]
    fn locks_and_barriers_add_time() {
        let m = XeonModel::xeon_16_core();
        let base = work(1_000, 1_000);
        let mut synced = work(1_000, 1_000);
        synced.lock_acquisitions = 1_000_000;
        synced.barriers = 100;
        assert!(m.time_for(&synced, 0) > m.time_for(&base, 0));
    }

    #[test]
    fn memory_bound_work_is_priced_by_bandwidth() {
        let m = XeonModel::xeon_16_core();
        let mut ops = OpCounter::new();
        ops.load(40_000_000_000); // 40 GB at 40 GB/s ≈ 1 s before contention
        let w = WorkEstimate {
            ops,
            n: 10,
            ..Default::default()
        };
        let t = m.time_for(&w, 0);
        assert!(t >= SimDuration::from_millis(900), "{t}");
    }

    #[test]
    fn amdahl_serial_fraction_limits_scaling() {
        let mut wide = XeonModel::xeon_16_core();
        wide.cores = 1_000_000; // absurd width: serial fraction dominates
        let w = work(10, 1_000_000_000);
        let t = wide.time_for(&w, 0);
        let serial_secs =
            1.0e9 / wide.ops_per_cycle * wide.serial_fraction / (wide.clock_mhz as f64 * 1.0e6);
        assert!(t.as_secs_f64() >= serial_secs * 0.99);
    }
}
