//! MIMD (multi-core) substrate: a real threaded executor and a modeled
//! 16-core Xeon.
//!
//! The reproduced paper's baseline is the 16-core Intel Xeon shared-memory
//! implementation of the ATM tasks from the authors' prior work [12, 13],
//! whose defining properties are (a) rapidly growing run time, (b) many
//! missed deadlines, and (c) non-deterministic timing due to asynchrony and
//! lock contention. This crate supplies both halves of the substitution:
//!
//! * [`MimdPool`] + [`LockedVec`] — an honest shared-memory implementation
//!   substrate: scoped threads with static partitioning, barrier-phase
//!   execution, lock-per-record access, and *measured* wall-clock time.
//!   Running the ATM tasks on it exhibits real MIMD non-determinism on the
//!   host machine.
//! * [`XeonModel`] — a deterministic analytic model of the 2012-era 16-core
//!   Xeon, consuming abstract operation counts (from
//!   [`sim_clock::OpCounter`]) plus synchronization/contention terms, used
//!   to regenerate the paper's figures with the Xeon series on the same
//!   axes as the simulated devices.

pub mod locked;
pub mod model;
pub mod pool;

pub use locked::LockedVec;
pub use model::{WorkEstimate, XeonModel};
pub use pool::MimdPool;
