//! Randomized-but-deterministic tests: the executive's accounting
//! identities hold for arbitrary workloads. Fixed seeds, so failures
//! reproduce exactly.

use rt_sched::{CyclicExecutive, MajorCycleSpec, TaskExecution};
use sim_clock::{SimDuration, SimRng};

/// For any workload: used + slack per period equals the period length,
/// the simulated clock advances exactly cycles × major-cycle, and a
/// period is missed iff its task durations overflow the period.
#[test]
fn accounting_identities_hold() {
    let mut rng = SimRng::seed_from_u64(0xD1);
    for _ in 0..64 {
        let len = 1 + (rng.next_u64() % 63) as usize;
        let durations: Vec<u64> = (0..len).map(|_| rng.next_u64() % 800).collect();
        let periods_per_major = 1 + (rng.next_u64() % 7) as usize;
        let cycles = 1 + (rng.next_u64() % 3) as usize;

        let spec = MajorCycleSpec {
            period: SimDuration::from_millis(500),
            periods_per_major,
        };
        let mut exec = CyclicExecutive::new(spec);
        let durations_ref = &durations;
        let mut call = 0usize;
        let mut workload = move |_c: usize, _p: usize| {
            let d = durations_ref[call % durations_ref.len()];
            call += 1;
            vec![
                TaskExecution::new("A", SimDuration::from_millis(d / 2)),
                TaskExecution::new("B", SimDuration::from_millis(d - d / 2)),
            ]
        };
        let report = exec.run(&mut workload, cycles);

        let expected_periods = cycles * periods_per_major;
        assert_eq!(report.periods().len(), expected_periods);
        for p in report.periods() {
            assert_eq!(p.used + p.slack, SimDuration::from_millis(500));
            // A missed period is clamped at the boundary: zero slack.
            if p.missed {
                assert!(p.slack.is_zero());
                assert_eq!(p.used, SimDuration::from_millis(500));
            }
        }
        assert_eq!(
            exec.elapsed(),
            SimDuration::from_millis(500) * expected_periods as u64
        );

        // Misses + skips never exceed scheduled task executions.
        let scheduled = (expected_periods * 2) as u64;
        assert!(report.total_misses() + report.total_skips() <= scheduled);
    }
}

/// Task statistics fold exactly the durations of the executions that
/// were booked (completed before their period's boundary).
#[test]
fn task_stats_totals_match_booked_time() {
    let mut rng = SimRng::seed_from_u64(0xD2);
    for _ in 0..64 {
        let len = 4 + (rng.next_u64() % 28) as usize;
        let ms: Vec<u64> = (0..len).map(|_| 1 + rng.next_u64() % 399).collect();

        let spec = MajorCycleSpec {
            period: SimDuration::from_millis(500),
            periods_per_major: 4,
        };
        let mut exec = CyclicExecutive::new(spec);
        let ms_ref = &ms;
        let mut i = 0usize;
        let mut workload = move |_c: usize, _p: usize| {
            let d = ms_ref[i % ms_ref.len()];
            i += 1;
            vec![TaskExecution::new("T", SimDuration::from_millis(d))]
        };
        let report = exec.run(&mut workload, 2);
        if let Some(stats) = report.task_stats("T") {
            assert!(stats.min <= stats.max);
            assert!(stats.mean() >= stats.min && stats.mean() <= stats.max);
            assert!(stats.total >= stats.max);
            assert_eq!(
                stats.count + report.total_misses(),
                8,
                "every scheduled execution is either booked or missed"
            );
        } else {
            // Possible only if every single execution missed.
            assert_eq!(report.total_misses(), 8);
        }
    }
}
