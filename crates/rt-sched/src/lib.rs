//! A hard-real-time cyclic executive.
//!
//! The ATM system in the reproduced paper runs on a *major cycle* of 8
//! seconds divided into 16 half-second *periods*. Task 1 (tracking and
//! correlation) executes every period; Tasks 2 and 3 (collision detection
//! and resolution) execute once per major cycle in the 16th period. Every
//! task scheduled in a period must complete before the period ends; a task
//! that cannot is a **deadline miss**, and any tasks still pending at the
//! period boundary are **skipped** so the next period starts on time.
//! Remaining slack is waited out so nothing starts early (the paper checks
//! both properties).
//!
//! [`CyclicExecutive`] implements exactly those semantics over abstract
//! tasks that report their own execution time as a
//! [`sim_clock::SimDuration`] — measured wall time for host backends,
//! modeled device time for the simulated architectures — and produces an
//! [`ExecutiveReport`] with per-task statistics, per-period slack, miss and
//! skip counts.

//! # Example
//!
//! ```
//! use rt_sched::{CyclicExecutive, MajorCycleSpec, TaskExecution};
//! use sim_clock::SimDuration;
//!
//! let mut exec = CyclicExecutive::new(MajorCycleSpec::paper());
//! let mut workload = |_cycle: usize, period: usize| {
//!     let mut tasks = vec![TaskExecution::new("Task1", SimDuration::from_millis(3))];
//!     if period == 15 {
//!         tasks.push(TaskExecution::new("Task2+3", SimDuration::from_millis(40)));
//!     }
//!     tasks
//! };
//! let report = exec.run(&mut workload, 2);
//! assert_eq!(report.total_misses(), 0);
//! assert_eq!(report.task_stats("Task1").unwrap().count, 32);
//! ```

pub mod executive;
pub mod report;

pub use executive::{CyclicExecutive, MajorCycleSpec, PeriodicWorkload, TaskExecution};
pub use report::{ExecutiveReport, PeriodRecord, TaskStats};
