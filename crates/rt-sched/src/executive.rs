//! The cyclic executive itself.

use crate::report::{ExecutiveReport, PeriodRecord};
use sim_clock::{SimDuration, Timeline};
use telemetry::Recorder;

/// Shape of the major cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MajorCycleSpec {
    /// Length of one period (the paper: 500 ms).
    pub period: SimDuration,
    /// Periods per major cycle (the paper: 16 → an 8-second major cycle).
    pub periods_per_major: usize,
}

impl MajorCycleSpec {
    /// The paper's Goodyear/STARAN schedule: 16 half-second periods.
    pub fn paper() -> Self {
        MajorCycleSpec {
            period: SimDuration::from_millis(500),
            periods_per_major: 16,
        }
    }

    /// Length of the whole major cycle.
    pub fn major_cycle(&self) -> SimDuration {
        self.period * self.periods_per_major as u64
    }

    /// Validate the spec (non-degenerate).
    pub fn validate(&self) {
        assert!(!self.period.is_zero(), "period must be positive");
        assert!(
            self.periods_per_major > 0,
            "need at least one period per major cycle"
        );
    }
}

/// One task's execution within a period, as reported by the workload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TaskExecution {
    /// Task name ("Task1", "Task2+3", …) — aggregated by name in reports.
    pub name: &'static str,
    /// How long the task took (measured or modeled by the backend).
    pub duration: SimDuration,
}

impl TaskExecution {
    /// Convenience constructor.
    pub fn new(name: &'static str, duration: SimDuration) -> Self {
        TaskExecution { name, duration }
    }
}

/// A workload that knows which tasks to run in each period and how long
/// each took.
///
/// `cycle` is the major-cycle index, `period` the period index within it.
/// The executive calls this once per period, in order; implementations run
/// their tasks *when called* (so state advances exactly as scheduled) and
/// return the per-task durations.
pub trait PeriodicWorkload {
    /// Execute the tasks scheduled for (`cycle`, `period`).
    fn run_period(&mut self, cycle: usize, period: usize) -> Vec<TaskExecution>;
}

impl<F> PeriodicWorkload for F
where
    F: FnMut(usize, usize) -> Vec<TaskExecution>,
{
    fn run_period(&mut self, cycle: usize, period: usize) -> Vec<TaskExecution> {
        self(cycle, period)
    }
}

/// The cyclic executive: drives a workload through major cycles and books
/// every period against its deadline.
#[derive(Clone, Debug)]
pub struct CyclicExecutive {
    spec: MajorCycleSpec,
    clock: Timeline,
    recorder: Recorder,
}

impl CyclicExecutive {
    /// An executive over the given cycle shape.
    pub fn new(spec: MajorCycleSpec) -> Self {
        spec.validate();
        CyclicExecutive {
            spec,
            clock: Timeline::new(),
            recorder: Recorder::disabled(),
        }
    }

    /// Attach a telemetry recorder: every period and task execution emits
    /// a span on the `"rt-sched"` track (the executive's simulated clock),
    /// per-period slack is recorded into the `rt.slack_ms` histogram, and
    /// deadline misses become instant events plus an `rt.deadline_misses`
    /// counter.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }

    /// The cycle shape.
    pub fn spec(&self) -> &MajorCycleSpec {
        &self.spec
    }

    /// A fresh, empty report shaped for this executive's period length —
    /// the accumulator [`CyclicExecutive::book_period`] appends into.
    pub fn new_report(&self) -> ExecutiveReport {
        ExecutiveReport::new(self.spec.period)
    }

    /// Book one already-executed period into `report` and advance the
    /// executive's simulated clock by exactly one period.
    ///
    /// This is the stepwise entry the resumable engine drives: the caller
    /// runs the period's tasks itself (state advances when *it* decides)
    /// and hands the per-task durations here for deadline accounting.
    /// [`CyclicExecutive::run`] is a loop over this method.
    ///
    /// Within a period, task durations accumulate in order. A task whose
    /// completion would cross the period boundary is charged as a deadline
    /// miss; tasks after the first miss in the same period are counted as
    /// skipped (they did execute functionally — state must advance — but
    /// their time does not fit; this mirrors the paper's "skip so the next
    /// period starts on time" rule while keeping the simulation state
    /// consistent). Leftover slack is waited out so no period starts early.
    pub fn book_period(
        &mut self,
        report: &mut ExecutiveReport,
        cycle: usize,
        period: usize,
        executions: &[TaskExecution],
    ) {
        let track = self.recorder.track("rt-sched");
        let period_start = self.clock.now();

        let mut used = SimDuration::ZERO;
        let mut missed = false;
        let mut skipped = 0u32;
        for exec in executions {
            if missed {
                // Already over the boundary: this task is skipped.
                skipped += 1;
                report.record_skip(exec.name);
                continue;
            }
            let would_use = used + exec.duration;
            if self.recorder.is_enabled() {
                // The span shows the task's real length, even when
                // it overruns the boundary (that overrun *is* the
                // deadline miss, and the trace should show it).
                self.recorder.span_with_args(
                    track,
                    exec.name,
                    "rt.task",
                    period_start + used,
                    exec.duration,
                    vec![("cycle", cycle.into()), ("period", period.into())],
                );
            }
            if would_use > self.spec.period {
                missed = true;
                report.record_miss(exec.name, cycle, period);
                if self.recorder.is_enabled() {
                    self.recorder.instant(
                        track,
                        "deadline_miss",
                        "rt.miss",
                        period_start + self.spec.period,
                    );
                    self.recorder.counter_add("rt.deadline_misses", 1);
                }
                // The missing task still consumed time up to (and
                // past) the boundary; clamp the period at its edge.
                used = self.spec.period;
            } else {
                used = would_use;
            }
            report.record_task(exec.name, exec.duration);
        }

        self.clock.skip(used);
        let slack = self.spec.period.saturating_sub(used);
        // Wait out the remaining slack: the next period must not
        // start early.
        self.clock.skip(slack);
        if self.recorder.is_enabled() {
            self.recorder.span_with_args(
                track,
                "period",
                "rt.period",
                period_start,
                self.spec.period,
                vec![
                    ("cycle", cycle.into()),
                    ("period", period.into()),
                    ("used_ms", used.as_millis_f64().into()),
                    ("slack_ms", slack.as_millis_f64().into()),
                ],
            );
            self.recorder.counter_add("rt.periods", 1);
            self.recorder.histogram_record("rt.slack_ms", slack);
        }
        debug_assert_eq!(
            self.clock.now() - period_start,
            self.spec.period,
            "every period must take exactly one period of simulated time"
        );

        report.record_period(PeriodRecord {
            cycle,
            period,
            used,
            slack,
            missed,
            skipped,
        });
    }

    /// Run `major_cycles` full major cycles of the workload: call the
    /// workload once per period, in order, and book each period via
    /// [`CyclicExecutive::book_period`] (whose docs spell out the miss,
    /// skip and slack rules).
    pub fn run<W: PeriodicWorkload>(
        &mut self,
        workload: &mut W,
        major_cycles: usize,
    ) -> ExecutiveReport {
        let mut report = self.new_report();
        for cycle in 0..major_cycles {
            for period in 0..self.spec.periods_per_major {
                let executions = workload.run_period(cycle, period);
                self.book_period(&mut report, cycle, period, &executions);
            }
        }
        report
    }

    /// Total simulated time consumed so far.
    pub fn elapsed(&self) -> SimDuration {
        self.clock.elapsed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> MajorCycleSpec {
        MajorCycleSpec::paper()
    }

    #[test]
    fn paper_spec_is_an_eight_second_cycle() {
        let s = spec();
        assert_eq!(s.major_cycle(), SimDuration::from_secs(8));
    }

    #[test]
    fn on_time_workload_has_no_misses_and_full_slack_accounting() {
        let mut exec = CyclicExecutive::new(spec());
        let mut workload =
            |_c: usize, _p: usize| vec![TaskExecution::new("Task1", SimDuration::from_millis(10))];
        let report = exec.run(&mut workload, 2);
        assert_eq!(report.total_misses(), 0);
        assert_eq!(report.total_skips(), 0);
        assert_eq!(report.periods().len(), 32);
        for p in report.periods() {
            assert_eq!(p.used, SimDuration::from_millis(10));
            assert_eq!(p.slack, SimDuration::from_millis(490));
        }
        // 2 major cycles = 16 s of simulated time, no early starts.
        assert_eq!(exec.elapsed(), SimDuration::from_secs(16));
    }

    #[test]
    fn overlong_task_is_a_miss_and_period_is_clamped() {
        let mut exec = CyclicExecutive::new(spec());
        let mut workload = |_c: usize, p: usize| {
            if p == 0 {
                vec![TaskExecution::new("Task1", SimDuration::from_millis(700))]
            } else {
                vec![TaskExecution::new("Task1", SimDuration::from_millis(1))]
            }
        };
        let report = exec.run(&mut workload, 1);
        assert_eq!(report.total_misses(), 1);
        let p0 = &report.periods()[0];
        assert!(p0.missed);
        assert_eq!(p0.used, SimDuration::from_millis(500));
        assert_eq!(p0.slack, SimDuration::ZERO);
        // The timeline still advances exactly one period per period.
        assert_eq!(exec.elapsed(), SimDuration::from_secs(8));
    }

    #[test]
    fn tasks_after_a_miss_are_skipped() {
        let mut exec = CyclicExecutive::new(spec());
        let mut workload = |_c: usize, _p: usize| {
            vec![
                TaskExecution::new("Task1", SimDuration::from_millis(600)),
                TaskExecution::new("Task2+3", SimDuration::from_millis(100)),
            ]
        };
        let report = exec.run(&mut workload, 1);
        assert_eq!(report.total_misses(), 16);
        assert_eq!(report.total_skips(), 16);
        // Skipped tasks never book an execution.
        assert!(report.task_stats("Task2+3").is_none());
    }

    #[test]
    fn exact_fit_is_not_a_miss() {
        let mut exec = CyclicExecutive::new(spec());
        let mut workload =
            |_c: usize, _p: usize| vec![TaskExecution::new("Task1", SimDuration::from_millis(500))];
        let report = exec.run(&mut workload, 1);
        assert_eq!(report.total_misses(), 0);
        assert!(report.periods().iter().all(|p| p.slack.is_zero()));
    }

    #[test]
    fn multiple_tasks_accumulate_within_a_period() {
        let mut exec = CyclicExecutive::new(spec());
        let mut workload = |_c: usize, _p: usize| {
            vec![
                TaskExecution::new("A", SimDuration::from_millis(200)),
                TaskExecution::new("B", SimDuration::from_millis(200)),
                TaskExecution::new("C", SimDuration::from_millis(200)),
            ]
        };
        let report = exec.run(&mut workload, 1);
        // A and B fit (400 ms); C crosses the boundary.
        assert_eq!(report.total_misses(), 16);
        assert_eq!(report.task_stats("A").unwrap().count, 16);
        assert_eq!(report.task_stats("B").unwrap().count, 16);
    }

    #[test]
    fn workload_sees_cycle_and_period_indices_in_order() {
        let mut exec = CyclicExecutive::new(MajorCycleSpec {
            period: SimDuration::from_millis(100),
            periods_per_major: 4,
        });
        let mut seen = Vec::new();
        let mut workload = |c: usize, p: usize| {
            seen.push((c, p));
            vec![]
        };
        exec.run(&mut workload, 2);
        assert_eq!(
            seen,
            vec![
                (0, 0),
                (0, 1),
                (0, 2),
                (0, 3),
                (1, 0),
                (1, 1),
                (1, 2),
                (1, 3)
            ]
        );
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_period_is_rejected() {
        CyclicExecutive::new(MajorCycleSpec {
            period: SimDuration::ZERO,
            periods_per_major: 16,
        });
    }

    #[test]
    fn empty_period_is_all_slack() {
        let mut exec = CyclicExecutive::new(spec());
        let mut workload = |_c: usize, _p: usize| Vec::new();
        let report = exec.run(&mut workload, 1);
        assert!(report
            .periods()
            .iter()
            .all(|p| p.slack == SimDuration::from_millis(500)));
        assert_eq!(report.utilization(), 0.0);
    }
}
