//! Executive reports: per-period records and per-task statistics.

use sim_clock::SimDuration;
use std::collections::BTreeMap;
use std::fmt;

/// Booking record for one executed period.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PeriodRecord {
    /// Major-cycle index.
    pub cycle: usize,
    /// Period index within the major cycle.
    pub period: usize,
    /// Task time consumed (clamped at the period length on a miss).
    pub used: SimDuration,
    /// Slack waited out at the end of the period.
    pub slack: SimDuration,
    /// Whether a deadline was missed in this period.
    pub missed: bool,
    /// Tasks skipped after the miss.
    pub skipped: u32,
}

/// Aggregated statistics for one task name.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TaskStats {
    /// Completed executions booked.
    pub count: u64,
    /// Shortest execution.
    pub min: SimDuration,
    /// Longest execution.
    pub max: SimDuration,
    /// Sum of execution times.
    pub total: SimDuration,
}

impl TaskStats {
    fn new() -> Self {
        TaskStats {
            count: 0,
            min: SimDuration::MAX,
            max: SimDuration::ZERO,
            total: SimDuration::ZERO,
        }
    }

    fn record(&mut self, d: SimDuration) {
        self.count += 1;
        self.min = self.min.min(d);
        self.max = self.max.max(d);
        self.total += d;
    }

    /// Mean execution time (zero when nothing ran).
    pub fn mean(&self) -> SimDuration {
        if self.count == 0 {
            SimDuration::ZERO
        } else {
            self.total / self.count
        }
    }
}

/// One deadline miss, attributed to the task that crossed the boundary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MissRecord {
    /// Task that missed.
    pub task: &'static str,
    /// Major cycle of the miss.
    pub cycle: usize,
    /// Period of the miss.
    pub period: usize,
}

/// Full report of an executive run.
#[derive(Clone, Debug)]
pub struct ExecutiveReport {
    period_len: SimDuration,
    periods: Vec<PeriodRecord>,
    tasks: BTreeMap<&'static str, TaskStats>,
    misses: Vec<MissRecord>,
    skips: BTreeMap<&'static str, u64>,
}

impl ExecutiveReport {
    /// An empty report for periods of length `period_len`.
    pub fn new(period_len: SimDuration) -> Self {
        ExecutiveReport {
            period_len,
            periods: Vec::new(),
            tasks: BTreeMap::new(),
            misses: Vec::new(),
            skips: BTreeMap::new(),
        }
    }

    pub(crate) fn record_period(&mut self, rec: PeriodRecord) {
        self.periods.push(rec);
    }

    pub(crate) fn record_task(&mut self, name: &'static str, d: SimDuration) {
        self.tasks
            .entry(name)
            .or_insert_with(TaskStats::new)
            .record(d);
    }

    pub(crate) fn record_miss(&mut self, task: &'static str, cycle: usize, period: usize) {
        self.misses.push(MissRecord {
            task,
            cycle,
            period,
        });
    }

    pub(crate) fn record_skip(&mut self, task: &'static str) {
        *self.skips.entry(task).or_insert(0) += 1;
    }

    /// All period records, in execution order.
    pub fn periods(&self) -> &[PeriodRecord] {
        &self.periods
    }

    /// Statistics for one task name.
    pub fn task_stats(&self, name: &str) -> Option<&TaskStats> {
        self.tasks.get(name)
    }

    /// All task names with statistics, in name order.
    pub fn task_names(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.tasks.keys().copied()
    }

    /// Every miss, in order of occurrence.
    pub fn misses(&self) -> &[MissRecord] {
        &self.misses
    }

    /// Total deadline misses.
    pub fn total_misses(&self) -> u64 {
        self.misses.len() as u64
    }

    /// Total skipped task executions.
    pub fn total_skips(&self) -> u64 {
        self.skips.values().sum()
    }

    /// Fraction of total period time spent executing tasks, in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        if self.periods.is_empty() {
            return 0.0;
        }
        let used: SimDuration = self.periods.iter().map(|p| p.used).sum();
        let avail = self.period_len * self.periods.len() as u64;
        used.as_picos() as f64 / avail.as_picos() as f64
    }

    /// Largest `used` across periods (worst case observed).
    pub fn worst_period(&self) -> SimDuration {
        self.periods
            .iter()
            .map(|p| p.used)
            .max()
            .unwrap_or(SimDuration::ZERO)
    }
}

impl fmt::Display for ExecutiveReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "periods={} misses={} skips={} utilization={:.2}%",
            self.periods.len(),
            self.total_misses(),
            self.total_skips(),
            self.utilization() * 100.0
        )?;
        for (name, s) in &self.tasks {
            writeln!(
                f,
                "  {:<10} n={:<6} min={:<12} mean={:<12} max={}",
                name,
                s.count,
                s.min.to_string(),
                s.mean().to_string(),
                s.max
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_stats_track_min_mean_max() {
        let mut r = ExecutiveReport::new(SimDuration::from_millis(500));
        r.record_task("T", SimDuration::from_millis(10));
        r.record_task("T", SimDuration::from_millis(30));
        r.record_task("T", SimDuration::from_millis(20));
        let s = r.task_stats("T").unwrap();
        assert_eq!(s.count, 3);
        assert_eq!(s.min, SimDuration::from_millis(10));
        assert_eq!(s.max, SimDuration::from_millis(30));
        assert_eq!(s.mean(), SimDuration::from_millis(20));
    }

    #[test]
    fn utilization_is_used_over_available() {
        let mut r = ExecutiveReport::new(SimDuration::from_millis(500));
        r.record_period(PeriodRecord {
            cycle: 0,
            period: 0,
            used: SimDuration::from_millis(250),
            slack: SimDuration::from_millis(250),
            missed: false,
            skipped: 0,
        });
        r.record_period(PeriodRecord {
            cycle: 0,
            period: 1,
            used: SimDuration::from_millis(0),
            slack: SimDuration::from_millis(500),
            missed: false,
            skipped: 0,
        });
        assert!((r.utilization() - 0.25).abs() < 1e-12);
        assert_eq!(r.worst_period(), SimDuration::from_millis(250));
    }

    #[test]
    fn misses_and_skips_accumulate() {
        let mut r = ExecutiveReport::new(SimDuration::from_millis(500));
        r.record_miss("T1", 0, 3);
        r.record_miss("T1", 1, 3);
        r.record_skip("T2");
        r.record_skip("T2");
        r.record_skip("T2");
        assert_eq!(r.total_misses(), 2);
        assert_eq!(r.total_skips(), 3);
        assert_eq!(
            r.misses()[0],
            MissRecord {
                task: "T1",
                cycle: 0,
                period: 3
            }
        );
    }

    #[test]
    fn display_summarizes() {
        let mut r = ExecutiveReport::new(SimDuration::from_millis(500));
        r.record_task("Task1", SimDuration::from_millis(5));
        let s = r.to_string();
        assert!(s.contains("Task1"), "{s}");
        assert!(s.contains("misses=0"), "{s}");
    }

    #[test]
    fn empty_report_is_sane() {
        let r = ExecutiveReport::new(SimDuration::from_millis(500));
        assert_eq!(r.utilization(), 0.0);
        assert_eq!(r.worst_period(), SimDuration::ZERO);
        assert_eq!(r.total_misses(), 0);
        assert!(r.task_stats("nope").is_none());
    }

    #[test]
    fn zero_count_stats_mean_is_zero() {
        let s = TaskStats::new();
        assert_eq!(s.mean(), SimDuration::ZERO);
    }
}
