//! Randomized-but-deterministic tests: responder sets against a reference
//! model, flip-network algebra, machine-op timing laws. Fixed seeds, so
//! failures reproduce exactly.

use ap_sim::{ApMachine, ApTimingProfile, ResponderSet};
use sim_clock::SimRng;
use std::collections::BTreeSet;

/// Build a ResponderSet and the reference BTreeSet from the same indices.
fn from_indices(len: usize, idx: &[usize]) -> (ResponderSet, BTreeSet<usize>) {
    let mut rs = ResponderSet::new(len);
    let mut model = BTreeSet::new();
    for &i in idx {
        let i = i % len.max(1);
        if len > 0 {
            rs.set(i);
            model.insert(i);
        }
    }
    (rs, model)
}

fn random_indices(rng: &mut SimRng) -> Vec<usize> {
    let count = (rng.next_u64() % 40) as usize;
    (0..count)
        .map(|_| (rng.next_u64() % 10_000) as usize)
        .collect()
}

#[test]
fn responder_set_matches_btreeset_model() {
    let mut rng = SimRng::seed_from_u64(0xB1);
    for _ in 0..64 {
        let len = 1 + (rng.next_u64() % 499) as usize;
        let a = random_indices(&mut rng);
        let b = random_indices(&mut rng);
        let (mut ra, ma) = from_indices(len, &a);
        let (rb, mb) = from_indices(len, &b);

        assert_eq!(ra.count(), ma.len());
        assert_eq!(ra.any(), !ma.is_empty());
        assert_eq!(ra.first(), ma.first().copied());
        assert_eq!(
            ra.iter().collect::<Vec<_>>(),
            ma.iter().copied().collect::<Vec<_>>()
        );

        // Intersection.
        let mut and = ra.clone();
        and.and_with(&rb);
        let m_and: Vec<usize> = ma.intersection(&mb).copied().collect();
        assert_eq!(and.iter().collect::<Vec<_>>(), m_and);

        // Union.
        let mut or = ra.clone();
        or.or_with(&rb);
        let m_or: Vec<usize> = ma.union(&mb).copied().collect();
        assert_eq!(or.iter().collect::<Vec<_>>(), m_or);

        // Difference.
        ra.and_not_with(&rb);
        let m_diff: Vec<usize> = ma.difference(&mb).copied().collect();
        assert_eq!(ra.iter().collect::<Vec<_>>(), m_diff);
    }
}

#[test]
fn flip_xor_is_an_involution_and_a_permutation() {
    let mut rng = SimRng::seed_from_u64(0xB2);
    for _ in 0..64 {
        let log_n = 1 + (rng.next_u64() % 7) as u32;
        let n = 1usize << log_n;
        let pattern = (rng.next_u64() % 256) as usize % n;
        let seed = rng.next_u64() % 1_000;
        let values: Vec<i64> = (0..n as i64)
            .map(|v| v.wrapping_mul(seed as i64 | 1))
            .collect();
        let mut m = ApMachine::new(ApTimingProfile::staran());
        m.load_records(values.clone(), 1);

        m.flip_xor(pattern);
        // Permutation: same multiset.
        let mut sorted_now: Vec<i64> = m.records().to_vec();
        sorted_now.sort_unstable();
        let mut sorted_orig = values.clone();
        sorted_orig.sort_unstable();
        assert_eq!(sorted_now, sorted_orig);
        // Involution: applying again restores the original order.
        m.flip_xor(pattern);
        assert_eq!(m.records(), &values[..]);
    }
}

#[test]
fn bitonic_sort_agrees_with_std_sort() {
    let mut rng = SimRng::seed_from_u64(0xB3);
    for _ in 0..64 {
        let log_n = 1 + (rng.next_u64() % 7) as u32;
        let n = 1usize << log_n;
        let seed = rng.next_u64() % 10_000;
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let values: Vec<i64> = (0..n)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (state >> 40) as i64
            })
            .collect();
        let mut m = ApMachine::new(ApTimingProfile::staran());
        m.load_records(values.clone(), 1);
        m.flip_bitonic_sort_by(|&v| v as f64);
        let mut expected = values;
        expected.sort_unstable();
        assert_eq!(m.records(), &expected[..]);
    }
}

#[test]
fn search_time_is_independent_of_population() {
    let mut rng = SimRng::seed_from_u64(0xB4);
    for _ in 0..32 {
        let n = 1 + (rng.next_u64() % 4_999) as usize;
        let threshold = (rng.next_u64() % 5_000) as i64;
        // STARAN searches cost the same no matter how many PEs respond.
        let mut m = ApMachine::new(ApTimingProfile::staran());
        m.load_records((0..n as i64).collect::<Vec<_>>(), 1);
        m.reset_clock();
        m.search(1, |&v| v < threshold);
        let t1 = m.elapsed();
        m.reset_clock();
        m.search(1, |_| true);
        let t2 = m.elapsed();
        assert_eq!(t1, t2);
    }
}

#[test]
fn clearspeed_passes_match_ceil_division() {
    let mut rng = SimRng::seed_from_u64(0xB5);
    let p = ApTimingProfile::clearspeed_csx600();
    for n in [1usize, 191, 192, 193, 384, 99_999] {
        assert_eq!(p.passes(n), (n as u64).div_ceil(192));
    }
    for _ in 0..64 {
        let n = 1 + (rng.next_u64() % 99_999) as usize;
        assert_eq!(p.passes(n), (n as u64).div_ceil(192));
    }
}
