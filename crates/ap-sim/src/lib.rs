//! An associative processor (AP) emulator.
//!
//! The reproduced paper compares its CUDA ATM implementation against the
//! STARAN associative processor (Goodyear Aerospace, early 1970s — the
//! machine ATM was originally demonstrated on) and against a ClearSpeed
//! CSX600 emulation of that AP from the authors' prior work. Neither
//! machine is obtainable, so this crate emulates the *associative computing
//! model* they implement:
//!
//! * a PE array where every processing element holds one record in its own
//!   memory and evaluates predicates in lockstep ([`ApMachine`]),
//! * **responder sets** — the bit-vector of PEs whose record satisfied the
//!   last associative search ([`ResponderSet`]),
//! * the constant-time primitives the AP literature defines: broadcast,
//!   associative search, parallel arithmetic on active PEs, global
//!   min/max reduction, responder pick-one and count.
//!
//! Timing is charged per primitive from an [`ApTimingProfile`]: the STARAN
//! profile prices each primitive at a constant number of bit-serial cycles
//! (independent of how many records are loaded — that is the defining
//! property that makes the AP's ATM tasks linear-time overall), while the
//! ClearSpeed CSX600 profile has 2 × 96 word-parallel PEs and must
//! *virtualize*: an operation over `n` records costs `ceil(n / 192)`
//! passes, plus ring-network steps for reductions.

//! # Example
//!
//! ```
//! use ap_sim::{ApMachine, ApTimingProfile};
//!
//! let mut ap = ApMachine::new(ApTimingProfile::staran());
//! ap.load_records(vec![17i64, 4, 256, 4], 1);
//!
//! // Constant-time associative search: which PEs hold the value 4?
//! let responders = ap.search(1, |&v| v == 4);
//! assert_eq!(responders.count(), 2);
//! assert_eq!(ap.pick_one(&responders), Some(1));
//!
//! // Constant-time max reduction across all PEs.
//! let all = ap_sim::ResponderSet::all(4);
//! assert_eq!(ap.max_by_key(&all, |&v| v as f64), Some(2));
//! ```

pub mod flip;
pub mod machine;
pub mod ops;
pub mod responder;
pub mod timing;

pub use machine::ApMachine;
pub use ops::ApStats;
pub use responder::ResponderSet;
pub use timing::ApTimingProfile;
