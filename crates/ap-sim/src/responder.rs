//! Responder sets: the AP's hardware bit-vector of matching PEs.

/// A fixed-capacity bit set over PE indices.
///
/// In AP hardware this is the responder register: one bit per PE, written by
/// an associative search in a single step. The emulator uses it both as the
/// result of searches and as the activity mask for subsequent masked
/// operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResponderSet {
    words: Vec<u64>,
    len: usize,
}

impl ResponderSet {
    /// An empty responder set over `len` PEs.
    pub fn new(len: usize) -> Self {
        ResponderSet {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// A set with every PE responding.
    pub fn all(len: usize) -> Self {
        let mut s = ResponderSet::new(len);
        for i in 0..s.words.len() {
            s.words[i] = u64::MAX;
        }
        s.trim();
        s
    }

    /// Number of PEs covered (capacity, not population).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the set covers zero PEs.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn trim(&mut self) {
        let tail_bits = self.len % 64;
        if tail_bits != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail_bits) - 1;
            }
        }
    }

    /// Set PE `i`'s responder bit.
    #[inline]
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Clear PE `i`'s responder bit.
    #[inline]
    pub fn clear(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Read PE `i`'s responder bit.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Number of responders (the AP's response counter).
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether any PE responds (the AP's any-responder flag).
    pub fn any(&self) -> bool {
        self.words.iter().any(|&w| w != 0)
    }

    /// Lowest-indexed responder, if any (the AP's pick-one/step network).
    pub fn first(&self) -> Option<usize> {
        for (wi, &w) in self.words.iter().enumerate() {
            if w != 0 {
                return Some(wi * 64 + w.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Clear every bit.
    pub fn clear_all(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// In-place intersection.
    pub fn and_with(&mut self, other: &ResponderSet) {
        assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place union.
    pub fn or_with(&mut self, other: &ResponderSet) {
        assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place difference (`self \ other`).
    pub fn and_not_with(&mut self, other: &ResponderSet) {
        assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Iterate responder indices in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let tz = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + tz)
                }
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear_roundtrip() {
        let mut s = ResponderSet::new(200);
        assert!(!s.get(130));
        s.set(130);
        assert!(s.get(130));
        s.clear(130);
        assert!(!s.get(130));
    }

    #[test]
    fn all_has_full_population_and_trims_tail() {
        let s = ResponderSet::all(70);
        assert_eq!(s.count(), 70);
        assert!(s.get(69));
        // No phantom bits beyond `len`.
        assert_eq!(s.iter().max(), Some(69));
    }

    #[test]
    fn count_any_first() {
        let mut s = ResponderSet::new(128);
        assert!(!s.any());
        assert_eq!(s.first(), None);
        s.set(100);
        s.set(64);
        s.set(5);
        assert!(s.any());
        assert_eq!(s.count(), 3);
        assert_eq!(s.first(), Some(5));
    }

    #[test]
    fn iter_visits_ascending() {
        let mut s = ResponderSet::new(300);
        for &i in &[7usize, 63, 64, 128, 299] {
            s.set(i);
        }
        let got: Vec<usize> = s.iter().collect();
        assert_eq!(got, vec![7, 63, 64, 128, 299]);
    }

    #[test]
    fn boolean_ops() {
        let mut a = ResponderSet::new(100);
        let mut b = ResponderSet::new(100);
        a.set(1);
        a.set(2);
        a.set(3);
        b.set(2);
        b.set(3);
        b.set(4);
        let mut and = a.clone();
        and.and_with(&b);
        assert_eq!(and.iter().collect::<Vec<_>>(), vec![2, 3]);
        let mut or = a.clone();
        or.or_with(&b);
        assert_eq!(or.count(), 4);
        let mut diff = a.clone();
        diff.and_not_with(&b);
        assert_eq!(diff.iter().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn clear_all_empties() {
        let mut s = ResponderSet::all(65);
        s.clear_all();
        assert!(!s.any());
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn zero_length_set_is_sane() {
        let s = ResponderSet::new(0);
        assert!(s.is_empty());
        assert!(!s.any());
        assert_eq!(s.first(), None);
        assert_eq!(s.iter().count(), 0);
    }
}
