//! Timing profiles for the emulated associative machines.

use sim_clock::SimDuration;

/// Cost parameters of an associative machine.
///
/// All primitive costs are in machine cycles *per pass*. A pass covers
/// `physical_pes` records; operating on `n` records takes
/// `ceil(n / physical_pes)` passes (`physical_pes = None` models "one PE
/// per record", the assumption the paper's STARAN analysis makes — its
/// linear ATM bound comes precisely from associative ops being independent
/// of `n`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ApTimingProfile {
    /// Profile name for reports.
    pub name: &'static str,
    /// Machine clock in MHz.
    pub clock_mhz: u32,
    /// Word width processed by searches/reductions (bit-serial machines pay
    /// per bit).
    pub word_bits: u32,
    /// Physical PE count; `None` = enough PEs for any workload.
    pub physical_pes: Option<u32>,
    /// Cycles to broadcast a word from the control unit to all PEs.
    pub broadcast_cycles: u64,
    /// Cycles per *bit* of an associative compare/search across all PEs.
    pub search_cycles_per_bit: u64,
    /// Cycles per *bit* of a masked parallel arithmetic step.
    pub arith_cycles_per_bit: u64,
    /// Cycles per *bit* of a global min/max reduction.
    pub reduce_cycles_per_bit: u64,
    /// Cycles for pick-one responder resolution / any-responder test.
    pub pick_cycles: u64,
    /// Extra cycles per pass for inter-PE routing (ring steps on the
    /// CSX600; zero on the flip-network STARAN for these access patterns).
    pub route_cycles_per_pass: u64,
    /// Cycles per word to move a record between the control unit and a PE
    /// (used when the host stages data in and out).
    pub io_cycles_per_word: u64,
}

impl ApTimingProfile {
    /// Goodyear Aerospace STARAN (the 1972 Dulles-demo machine).
    ///
    /// Bit-serial across all PEs: a search over a 32-bit field costs ~1
    /// cycle per bit at a ~6.5 MHz array cycle (150 ns). Capacities were
    /// 256–8192 PEs per array; the paper's complexity argument treats the
    /// AP as having a PE per aircraft, so `physical_pes = None` here and
    /// the per-primitive cost is constant in `n`.
    pub fn staran() -> ApTimingProfile {
        ApTimingProfile {
            name: "STARAN AP",
            clock_mhz: 7,
            word_bits: 32,
            physical_pes: None,
            broadcast_cycles: 2,
            search_cycles_per_bit: 1,
            arith_cycles_per_bit: 1,
            reduce_cycles_per_bit: 2,
            pick_cycles: 2,
            route_cycles_per_pass: 0,
            io_cycles_per_word: 4,
        }
    }

    /// ClearSpeed CSX600 running the Cn emulation of the AP ([12, 13]).
    ///
    /// Two chips × 96 word-parallel PEs at 250 MHz. Word-parallel, so the
    /// per-bit costs here are scaled so that one 32-bit operation costs a
    /// few cycles. Virtualization is the defining feature: beyond 192
    /// records everything pays `ceil(n/192)` passes, and reductions pay
    /// ring-routing steps per pass.
    pub fn clearspeed_csx600() -> ApTimingProfile {
        ApTimingProfile {
            name: "ClearSpeed CSX600",
            clock_mhz: 250,
            word_bits: 32,
            physical_pes: Some(192),
            broadcast_cycles: 4,
            // ~2 cycles per 32-bit compare: 1/16 cycle per bit rounds to
            // the table below via word cost helpers (stored as numerator
            // over the word, see `word_cost`).
            search_cycles_per_bit: 2,
            arith_cycles_per_bit: 2,
            reduce_cycles_per_bit: 2,
            pick_cycles: 6,
            route_cycles_per_pass: 96,
            io_cycles_per_word: 8,
        }
    }

    /// How many passes an operation over `n` records needs.
    pub fn passes(&self, n: usize) -> u64 {
        match self.physical_pes {
            None => 1,
            Some(p) => (n as u64).div_ceil(p as u64).max(1),
        }
    }

    /// Whether the machine is word-parallel (per-"bit" costs are charged
    /// once per word instead of per bit).
    fn word_parallel(&self) -> bool {
        self.physical_pes.is_some()
    }

    /// Cycles for a field-wide primitive given its per-bit cost.
    fn word_cost(&self, cycles_per_bit: u64) -> u64 {
        if self.word_parallel() {
            // Word-parallel machines spend the per-bit figure per *word*.
            cycles_per_bit
        } else {
            cycles_per_bit * self.word_bits as u64
        }
    }

    /// Duration of a broadcast to all PEs holding `n` records.
    pub fn broadcast(&self, n: usize) -> SimDuration {
        self.cycles_to_time(self.broadcast_cycles * self.passes(n))
    }

    /// Duration of an associative search over `fields` record fields on
    /// `n` records.
    pub fn search(&self, n: usize, fields: u32) -> SimDuration {
        let per_pass =
            self.word_cost(self.search_cycles_per_bit) * fields as u64 + self.route_cycles_per_pass;
        self.cycles_to_time(per_pass * self.passes(n))
    }

    /// Duration of a masked parallel arithmetic step of `ops` word
    /// operations on `n` records.
    pub fn arith(&self, n: usize, ops: u32) -> SimDuration {
        let per_pass =
            self.word_cost(self.arith_cycles_per_bit) * ops as u64 + self.route_cycles_per_pass;
        self.cycles_to_time(per_pass * self.passes(n))
    }

    /// Duration of a global min/max reduction over `n` records.
    ///
    /// Bit-serial machines resolve a reduction in `word_bits` responder
    /// steps regardless of `n`; virtualized machines repeat per pass and
    /// pay ring routing to combine partials.
    pub fn reduce(&self, n: usize) -> SimDuration {
        let per_pass = self.word_cost(self.reduce_cycles_per_bit) + self.route_cycles_per_pass;
        self.cycles_to_time(per_pass * self.passes(n))
    }

    /// Duration of pick-one / any-responder resolution.
    pub fn pick(&self) -> SimDuration {
        self.cycles_to_time(self.pick_cycles)
    }

    /// Duration to stage `n` records of `words` words each between host
    /// and PE memories.
    pub fn io(&self, n: usize, words: u32) -> SimDuration {
        self.cycles_to_time(self.io_cycles_per_word * words as u64 * n as u64)
    }

    fn cycles_to_time(&self, cycles: u64) -> SimDuration {
        SimDuration::from_cycles(cycles, self.clock_mhz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn staran_costs_are_independent_of_n() {
        let p = ApTimingProfile::staran();
        assert_eq!(p.search(100, 2), p.search(100_000, 2));
        assert_eq!(p.broadcast(10), p.broadcast(10_000_000));
        assert_eq!(p.passes(1_000_000), 1);
    }

    #[test]
    fn clearspeed_costs_grow_with_virtualization() {
        let p = ApTimingProfile::clearspeed_csx600();
        assert_eq!(p.passes(192), 1);
        assert_eq!(p.passes(193), 2);
        assert_eq!(p.passes(1920), 10);
        let one_pass = p.search(192, 2);
        let ten_pass = p.search(1920, 2);
        assert_eq!(ten_pass, one_pass * 10);
    }

    #[test]
    fn passes_is_at_least_one() {
        let p = ApTimingProfile::clearspeed_csx600();
        assert_eq!(p.passes(0), 1);
        assert_eq!(ApTimingProfile::staran().passes(0), 1);
    }

    #[test]
    fn bit_serial_search_pays_per_bit() {
        let p = ApTimingProfile::staran();
        // 2 fields × 32 bits × 1 cycle = 64 cycles at 7 MHz.
        assert_eq!(p.search(100, 2), SimDuration::from_cycles(64, 7));
    }

    #[test]
    fn word_parallel_search_pays_per_word() {
        let p = ApTimingProfile::clearspeed_csx600();
        // 2 fields × 2 cycles + 96 ring cycles, one pass at 250 MHz.
        assert_eq!(p.search(100, 2), SimDuration::from_cycles(100, 250));
    }

    #[test]
    fn io_scales_linearly_with_records() {
        // Use the 250 MHz profile: cycle time is an exact picosecond count,
        // so doubling the records exactly doubles the duration.
        let p = ApTimingProfile::clearspeed_csx600();
        assert_eq!(p.io(200, 4), p.io(100, 4) * 2);
    }

    #[test]
    fn staran_is_much_slower_clocked_than_clearspeed() {
        let s = ApTimingProfile::staran();
        let c = ApTimingProfile::clearspeed_csx600();
        // At small n (no virtualization), the 1970s machine's primitive is
        // slower in absolute time.
        assert!(s.search(100, 2) > c.search(100, 2));
    }
}
