//! The associative PE array.

use crate::ops::ApStats;
use crate::responder::ResponderSet;
use crate::timing::ApTimingProfile;
use sim_clock::{SimDuration, SimInstant, Timeline};
use telemetry::{Recorder, TrackId};

/// An associative processor holding one record of type `R` per PE.
///
/// All primitives operate across the whole array in lockstep, restricted to
/// the PEs of an explicit [`ResponderSet`] mask where noted. Every primitive
/// charges its cost to the machine's [`Timeline`] according to the
/// [`ApTimingProfile`], so algorithm code written against this API gets the
/// machine's time "for free".
pub struct ApMachine<R> {
    records: Vec<R>,
    profile: ApTimingProfile,
    timeline: Timeline,
    stats: ApStats,
    recorder: Recorder,
    track: TrackId,
    /// Offset of this machine's local clock on the recorder's track (a
    /// caller running several machines in sequence keeps their spans from
    /// overlapping by advancing the origin between runs).
    origin: SimDuration,
}

impl<R> ApMachine<R> {
    /// Bring up a machine with the given timing profile and no records.
    pub fn new(profile: ApTimingProfile) -> Self {
        ApMachine {
            records: Vec::new(),
            profile,
            timeline: Timeline::new(),
            stats: ApStats::default(),
            recorder: Recorder::disabled(),
            track: TrackId::default(),
            origin: SimDuration::ZERO,
        }
    }

    /// Attach a telemetry recorder: every primitive emits a span on
    /// `track` (category `"ap"`, with its virtual-PE pass count), anchored
    /// at `origin` plus the machine's local clock.
    pub fn set_telemetry(&mut self, recorder: Recorder, track: TrackId, origin: SimDuration) {
        self.recorder = recorder;
        self.track = track;
        self.origin = origin;
    }

    /// Number of records currently loaded (one per active PE).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no records are loaded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The machine's timing profile.
    pub fn profile(&self) -> &ApTimingProfile {
        &self.profile
    }

    /// Elapsed machine time.
    pub fn elapsed(&self) -> SimDuration {
        self.timeline.elapsed()
    }

    /// Primitive-operation statistics.
    pub fn stats(&self) -> &ApStats {
        &self.stats
    }

    /// Reset clock and statistics (records stay loaded).
    pub fn reset_clock(&mut self) {
        self.timeline.reset();
        self.stats = ApStats::default();
    }

    fn charge(&mut self, label: &str, d: SimDuration) {
        let passes = self.profile.passes(self.records.len());
        if self.recorder.is_enabled() {
            let start = SimInstant::at(self.origin + self.timeline.elapsed());
            self.recorder.span_with_args(
                self.track,
                label,
                "ap",
                start,
                d,
                vec![
                    ("passes", passes.into()),
                    ("pes", self.records.len().into()),
                ],
            );
            self.recorder.counter_add("ap.primitives", 1);
            self.recorder.counter_add("ap.virtual_pe_passes", passes);
            self.recorder.histogram_record("ap.primitive_ms", d);
        }
        self.timeline.advance(label, d);
        self.stats.passes += passes;
    }

    /// Advance the machine clock by an externally computed primitive cost
    /// (used by the flip-network extension in [`crate::flip`]).
    pub(crate) fn advance_clock(&mut self, label: &str, d: SimDuration) {
        if self.recorder.is_enabled() {
            let start = SimInstant::at(self.origin + self.timeline.elapsed());
            self.recorder.span(self.track, label, "ap", start, d);
            self.recorder.counter_add("ap.primitives", 1);
        }
        self.timeline.advance(label, d);
    }

    /// Stage records into PE memories (charges I/O time; `words_per_record`
    /// is the record size the machine moves).
    pub fn load_records(&mut self, records: Vec<R>, words_per_record: u32) {
        let d = self.profile.io(records.len(), words_per_record);
        self.records = records;
        self.stats.io_ops += 1;
        self.charge("ap:io:load", d);
    }

    /// Read access to PE memories from the control unit (free: the control
    /// unit addresses PE memory directly in these machines; bulk staging
    /// should use [`ApMachine::unload_records`]).
    pub fn records(&self) -> &[R] {
        &self.records
    }

    /// Take the records out, charging I/O time.
    pub fn unload_records(&mut self, words_per_record: u32) -> Vec<R> {
        let d = self.profile.io(self.records.len(), words_per_record);
        self.stats.io_ops += 1;
        self.charge("ap:io:unload", d);
        std::mem::take(&mut self.records)
    }

    /// Broadcast a value to all PEs. The value itself is typically captured
    /// by the closure of a following search/arith step; this primitive
    /// charges the broadcast time and returns the value for ergonomics.
    pub fn broadcast<T>(&mut self, value: T) -> T {
        let d = self.profile.broadcast(self.records.len());
        self.stats.broadcasts += 1;
        self.charge("ap:broadcast", d);
        value
    }

    /// Associative search: every PE evaluates `pred` on its record in
    /// lockstep; returns the responder set. `fields` is the number of
    /// record fields the predicate examines (prices the bit-serial
    /// comparison).
    pub fn search<F>(&mut self, fields: u32, mut pred: F) -> ResponderSet
    where
        F: FnMut(&R) -> bool,
    {
        let mut resp = ResponderSet::new(self.records.len());
        for (i, r) in self.records.iter().enumerate() {
            if pred(r) {
                resp.set(i);
            }
        }
        let d = self.profile.search(self.records.len(), fields);
        self.stats.searches += 1;
        self.charge("ap:search", d);
        resp
    }

    /// Masked search: like [`ApMachine::search`] but only PEs in `mask`
    /// participate (others cannot respond).
    pub fn search_masked<F>(
        &mut self,
        mask: &ResponderSet,
        fields: u32,
        mut pred: F,
    ) -> ResponderSet
    where
        F: FnMut(&R) -> bool,
    {
        assert_eq!(mask.len(), self.records.len(), "mask/array size mismatch");
        let mut resp = ResponderSet::new(self.records.len());
        for i in mask.iter() {
            if pred(&self.records[i]) {
                resp.set(i);
            }
        }
        let d = self.profile.search(self.records.len(), fields);
        self.stats.searches += 1;
        self.charge("ap:search", d);
        resp
    }

    /// Masked parallel arithmetic: every PE in `mask` applies `f` to its
    /// record simultaneously. `ops` is the number of word operations in the
    /// step (prices the lockstep ALU sequence).
    pub fn for_each_masked<F>(&mut self, mask: &ResponderSet, ops: u32, mut f: F)
    where
        F: FnMut(usize, &mut R),
    {
        assert_eq!(mask.len(), self.records.len(), "mask/array size mismatch");
        for i in mask.iter() {
            f(i, &mut self.records[i]);
        }
        let d = self.profile.arith(self.records.len(), ops);
        self.stats.arith_steps += 1;
        self.charge("ap:arith", d);
    }

    /// Parallel arithmetic over all PEs.
    pub fn for_each_all<F>(&mut self, ops: u32, f: F)
    where
        F: FnMut(usize, &mut R),
    {
        let mask = ResponderSet::all(self.records.len());
        self.for_each_masked(&mask, ops, f);
    }

    /// Global minimum over `mask` by a key function: the AP's constant-time
    /// min-reduction. Returns the index of the minimizing PE.
    pub fn min_by_key<F>(&mut self, mask: &ResponderSet, mut key: F) -> Option<usize>
    where
        F: FnMut(&R) -> f64,
    {
        assert_eq!(mask.len(), self.records.len(), "mask/array size mismatch");
        let mut best: Option<(usize, f64)> = None;
        for i in mask.iter() {
            let k = key(&self.records[i]);
            match best {
                Some((_, bk)) if bk <= k => {}
                _ => best = Some((i, k)),
            }
        }
        let d = self.profile.reduce(self.records.len());
        self.stats.reductions += 1;
        self.charge("ap:reduce:min", d);
        best.map(|(i, _)| i)
    }

    /// Global maximum over `mask` by a key function.
    pub fn max_by_key<F>(&mut self, mask: &ResponderSet, mut key: F) -> Option<usize>
    where
        F: FnMut(&R) -> f64,
    {
        assert_eq!(mask.len(), self.records.len(), "mask/array size mismatch");
        let mut best: Option<(usize, f64)> = None;
        for i in mask.iter() {
            let k = key(&self.records[i]);
            match best {
                Some((_, bk)) if bk >= k => {}
                _ => best = Some((i, k)),
            }
        }
        let d = self.profile.reduce(self.records.len());
        self.stats.reductions += 1;
        self.charge("ap:reduce:max", d);
        best.map(|(i, _)| i)
    }

    /// Pick-one responder resolution (constant time in AP hardware).
    pub fn pick_one(&mut self, resp: &ResponderSet) -> Option<usize> {
        let d = self.profile.pick();
        self.stats.picks += 1;
        self.charge("ap:pick", d);
        resp.first()
    }

    /// Direct mutable record access for test setup; charges nothing and is
    /// not part of the machine model.
    #[doc(hidden)]
    pub fn records_mut_untimed(&mut self) -> &mut [R] {
        &mut self.records
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine_with(values: Vec<i64>) -> ApMachine<i64> {
        let mut m = ApMachine::new(ApTimingProfile::staran());
        m.load_records(values, 1);
        m
    }

    #[test]
    fn search_finds_matching_records() {
        let mut m = machine_with(vec![5, 10, 15, 20]);
        let resp = m.search(1, |&v| v > 9);
        assert_eq!(resp.iter().collect::<Vec<_>>(), vec![1, 2, 3]);
        assert_eq!(m.stats().searches, 1);
    }

    #[test]
    fn masked_search_ignores_inactive_pes() {
        let mut m = machine_with(vec![1, 2, 3, 4]);
        let mut mask = ResponderSet::new(4);
        mask.set(0);
        mask.set(2);
        let resp = m.search_masked(&mask, 1, |&v| v >= 1);
        assert_eq!(resp.iter().collect::<Vec<_>>(), vec![0, 2]);
    }

    #[test]
    fn parallel_arith_updates_masked_records() {
        let mut m = machine_with(vec![1, 1, 1, 1]);
        let mut mask = ResponderSet::new(4);
        mask.set(1);
        mask.set(3);
        m.for_each_masked(&mask, 1, |_, r| *r += 10);
        assert_eq!(m.records(), &[1, 11, 1, 11]);
    }

    #[test]
    fn min_max_reductions() {
        let mut m = machine_with(vec![7, 3, 9, 3]);
        let all = ResponderSet::all(4);
        // Ties resolve to the lowest PE index, like hardware pick-one.
        assert_eq!(m.min_by_key(&all, |&v| v as f64), Some(1));
        assert_eq!(m.max_by_key(&all, |&v| v as f64), Some(2));
        assert_eq!(m.stats().reductions, 2);
    }

    #[test]
    fn reductions_respect_mask() {
        let mut m = machine_with(vec![7, 3, 9, 1]);
        let mut mask = ResponderSet::new(4);
        mask.set(0);
        mask.set(2);
        assert_eq!(m.min_by_key(&mask, |&v| v as f64), Some(0));
        assert_eq!(m.max_by_key(&mask, |&v| v as f64), Some(2));
    }

    #[test]
    fn empty_mask_reduction_is_none() {
        let mut m = machine_with(vec![1, 2]);
        let mask = ResponderSet::new(2);
        assert_eq!(m.min_by_key(&mask, |&v| v as f64), None);
    }

    #[test]
    fn clock_advances_with_every_primitive() {
        let mut m = machine_with(vec![0; 100]);
        let t0 = m.elapsed();
        m.broadcast(42);
        let t1 = m.elapsed();
        assert!(t1 > t0);
        m.search(2, |_| true);
        assert!(m.elapsed() > t1);
    }

    #[test]
    fn staran_time_for_fixed_ops_is_constant_in_n() {
        // The associative property: same op sequence, different n, same time
        // (minus I/O, which is linear).
        let mut small = ApMachine::new(ApTimingProfile::staran());
        small.load_records(vec![0i64; 100], 1);
        small.reset_clock();
        let mut large = ApMachine::new(ApTimingProfile::staran());
        large.load_records(vec![0i64; 100_000], 1);
        large.reset_clock();
        for m in [&mut small, &mut large] {
            m.broadcast(1);
            let resp = m.search(2, |_| false);
            m.pick_one(&resp);
        }
        assert_eq!(small.elapsed(), large.elapsed());
    }

    #[test]
    fn clearspeed_time_grows_with_virtualization_passes() {
        let mut small = ApMachine::new(ApTimingProfile::clearspeed_csx600());
        small.load_records(vec![0i64; 192], 1);
        small.reset_clock();
        let mut large = ApMachine::new(ApTimingProfile::clearspeed_csx600());
        large.load_records(vec![0i64; 1920], 1);
        large.reset_clock();
        for m in [&mut small, &mut large] {
            m.search(2, |_| false);
        }
        assert_eq!(large.elapsed(), small.elapsed() * 10);
    }

    #[test]
    fn pick_one_returns_lowest_responder() {
        let mut m = machine_with(vec![0, 5, 5]);
        let resp = m.search(1, |&v| v == 5);
        assert_eq!(m.pick_one(&resp), Some(1));
        let empty = m.search(1, |&v| v == 99);
        assert_eq!(m.pick_one(&empty), None);
    }

    #[test]
    fn unload_returns_records_and_charges_io() {
        let mut m = machine_with(vec![1, 2, 3]);
        let io_before = m.stats().io_ops;
        let recs = m.unload_records(1);
        assert_eq!(recs, vec![1, 2, 3]);
        assert!(m.is_empty());
        assert_eq!(m.stats().io_ops, io_before + 1);
    }
}
