//! The STARAN flip network.
//!
//! STARAN's defining interconnect (designed by Kenneth Batcher, the same
//! Batcher whose conflict-detection algorithm the ATM tasks use) is a
//! *flip network*: a multistage shuffle that can apply any composition of
//! bit-level index permutations — in particular every **XOR permutation**
//! `i → i ⊕ pattern` — to the PE array in a constant number of network
//! cycles. The ATM programs of the era used it to realign radar data with
//! track stores and to implement Batcher sorting/merging primitives.
//!
//! The emulator implements the XOR (butterfly) family plus barrel shifts,
//! both constant-time under the machine's timing profile, and a
//! flip-network Batcher **bitonic merge-sort** built from them — the
//! canonical demonstration that the network turns the PE array into a
//! sorting machine in `O(log² n)` constant-cost steps.

use crate::machine::ApMachine;
use crate::timing::ApTimingProfile;
use sim_clock::SimDuration;

/// Pad-free check: XOR permutations need a power-of-two array.
fn assert_pow2(n: usize) {
    assert!(
        n.is_power_of_two(),
        "flip network operations require a power-of-two PE count, got {n}"
    );
}

impl<R> ApMachine<R> {
    /// Apply the XOR permutation `i → i ⊕ pattern` to the PE contents in
    /// one flip-network pass (constant time; `pattern` must be below the
    /// array size, which must be a power of two).
    pub fn flip_xor(&mut self, pattern: usize) {
        let n = self.len();
        if n == 0 || pattern == 0 {
            self.charge_flip(1);
            return;
        }
        assert_pow2(n);
        assert!(pattern < n, "pattern {pattern} out of range for {n} PEs");
        let records = self.records_mut_untimed();
        for i in 0..n {
            let j = i ^ pattern;
            if i < j {
                records.swap(i, j);
            }
        }
        self.charge_flip(1);
    }

    /// Barrel-shift the PE contents by `k` positions (wrapping), one
    /// network pass per power-of-two component of `k`.
    pub fn flip_shift(&mut self, k: usize) {
        let n = self.len();
        if n == 0 {
            self.charge_flip(1);
            return;
        }
        let k = k % n;
        let passes = k.count_ones().max(1);
        self.records_mut_untimed().rotate_left(k);
        self.charge_flip(passes);
    }

    /// Batcher bitonic sort of the PE contents by a key, entirely in
    /// flip-network compare-exchange passes: `O(log² n)` constant-cost
    /// steps regardless of the values.
    ///
    /// Returns the number of compare-exchange stages executed.
    pub fn flip_bitonic_sort_by<F>(&mut self, key: F) -> u32
    where
        F: Fn(&R) -> f64,
    {
        let n = self.len();
        if n <= 1 {
            return 0;
        }
        assert_pow2(n);
        let mut stages = 0u32;
        let mut k = 2;
        while k <= n {
            let mut j = k / 2;
            while j > 0 {
                // One stage: every PE pair (i, i^j) compare-exchanges in
                // lockstep through the network.
                let records = self.records_mut_untimed();
                for i in 0..n {
                    let l = i ^ j;
                    if l > i {
                        let ascending = i & k == 0;
                        let out_of_order = key(&records[i]) > key(&records[l]);
                        if ascending == out_of_order {
                            records.swap(i, l);
                        }
                    }
                }
                self.charge_flip(1);
                stages += 1;
                j /= 2;
            }
            k *= 2;
        }
        stages
    }

    /// Time of `passes` flip-network passes under the current profile.
    fn charge_flip(&mut self, passes: u32) {
        let d = self.profile().flip_pass_time() * passes as u64;
        self.advance_clock("ap:flip", d);
    }
}

impl ApTimingProfile {
    /// Duration of one flip-network pass: the network moves one bit-slice
    /// per cycle through `log2(PEs)`-ish stages; the historical figure is
    /// comparable to one word-wide associative step, which is how it is
    /// priced here.
    pub fn flip_pass_time(&self) -> SimDuration {
        let cycles = self.arith_cycles_per_bit
            * if self.physical_pes.is_some() {
                1
            } else {
                self.word_bits as u64
            }
            + self.route_cycles_per_pass;
        SimDuration::from_cycles(cycles, self.clock_mhz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine(values: Vec<i64>) -> ApMachine<i64> {
        let mut m = ApMachine::new(ApTimingProfile::staran());
        m.load_records(values, 1);
        m
    }

    #[test]
    fn xor_permutation_swaps_pairs() {
        let mut m = machine(vec![0, 1, 2, 3, 4, 5, 6, 7]);
        m.flip_xor(1);
        assert_eq!(m.records(), &[1, 0, 3, 2, 5, 4, 7, 6]);
        m.flip_xor(1);
        assert_eq!(m.records(), &[0, 1, 2, 3, 4, 5, 6, 7], "involution");
    }

    #[test]
    fn xor_by_half_swaps_halves() {
        let mut m = machine(vec![0, 1, 2, 3]);
        m.flip_xor(2);
        assert_eq!(m.records(), &[2, 3, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn xor_requires_power_of_two() {
        let mut m = machine(vec![0, 1, 2]);
        m.flip_xor(1);
    }

    #[test]
    fn shift_rotates() {
        let mut m = machine(vec![0, 1, 2, 3, 4, 5, 6, 7]);
        m.flip_shift(3);
        assert_eq!(m.records(), &[3, 4, 5, 6, 7, 0, 1, 2]);
        m.flip_shift(5);
        assert_eq!(m.records(), &[0, 1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn bitonic_sort_sorts_and_uses_log2_squared_stages() {
        let mut m = machine(vec![5, 3, 8, 1, 9, 2, 7, 0]);
        let stages = m.flip_bitonic_sort_by(|&v| v as f64);
        assert_eq!(m.records(), &[0, 1, 2, 3, 5, 7, 8, 9]);
        // n = 8: 1 + 2 + 3 = 6 stages.
        assert_eq!(stages, 6);
    }

    #[test]
    fn bitonic_sort_handles_descending_and_duplicate_keys() {
        let mut m = machine(vec![7, 7, 6, 5, 4, 3, 2, 1]);
        m.flip_bitonic_sort_by(|&v| v as f64);
        assert_eq!(m.records(), &[1, 2, 3, 4, 5, 6, 7, 7]);
    }

    #[test]
    fn flip_passes_charge_constant_time() {
        let mut small = machine(vec![0; 64]);
        let mut large = machine(vec![0; 4096]);
        small.reset_clock();
        large.reset_clock();
        small.flip_xor(1);
        large.flip_xor(1);
        assert_eq!(small.elapsed(), large.elapsed(), "network pass is O(1)");
    }

    #[test]
    fn sort_time_grows_only_with_log2_squared() {
        let time_for = |n: usize| {
            let mut m = machine((0..n as i64).rev().collect());
            m.reset_clock();
            m.flip_bitonic_sort_by(|&v| v as f64);
            m.elapsed()
        };
        let t64 = time_for(64); // 21 stages
        let t4096 = time_for(4_096); // 78 stages
        let ratio = t4096.as_picos() as f64 / t64.as_picos() as f64;
        assert!((ratio - 78.0 / 21.0).abs() < 0.2, "ratio {ratio}");
    }

    #[test]
    fn empty_and_single_arrays_are_fine() {
        let mut m = machine(vec![]);
        m.flip_xor(0);
        m.flip_shift(3);
        assert_eq!(m.flip_bitonic_sort_by(|&v| v as f64), 0);
        let mut one = machine(vec![42]);
        assert_eq!(one.flip_bitonic_sort_by(|&v| v as f64), 0);
        assert_eq!(one.records(), &[42]);
    }
}
