//! Operation statistics for the AP emulator.

use std::fmt;

/// Counts of each primitive executed by an [`crate::ApMachine`].
///
/// Useful for asserting the algorithmic structure of the ATM tasks (e.g.
/// Task 1 on the AP issues exactly one search per radar report) and for the
/// ablation bench comparing STARAN-style constant-time ops against
/// virtualized passes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ApStats {
    /// Broadcasts from the control unit.
    pub broadcasts: u64,
    /// Associative searches.
    pub searches: u64,
    /// Masked parallel arithmetic steps.
    pub arith_steps: u64,
    /// Global min/max reductions.
    pub reductions: u64,
    /// Pick-one / any-responder resolutions.
    pub picks: u64,
    /// Record staging operations (host↔PE I/O).
    pub io_ops: u64,
    /// Total virtualization passes executed across all primitives.
    pub passes: u64,
}

impl ApStats {
    /// Total primitive operations of all kinds.
    pub fn total_ops(&self) -> u64 {
        self.broadcasts
            + self.searches
            + self.arith_steps
            + self.reductions
            + self.picks
            + self.io_ops
    }
}

impl fmt::Display for ApStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "bcast={} search={} arith={} reduce={} pick={} io={} passes={}",
            self.broadcasts,
            self.searches,
            self.arith_steps,
            self.reductions,
            self.picks,
            self.io_ops,
            self.passes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_ops_sums_every_category() {
        let s = ApStats {
            broadcasts: 1,
            searches: 2,
            arith_steps: 3,
            reductions: 4,
            picks: 5,
            io_ops: 6,
            passes: 100,
        };
        assert_eq!(s.total_ops(), 21);
    }

    #[test]
    fn display_lists_counters() {
        let s = ApStats {
            searches: 7,
            ..Default::default()
        };
        assert!(s.to_string().contains("search=7"));
    }
}
