//! Seed stability: the exact fleets every generator produces for a fixed
//! `(n, seed)` are pinned by content hash in a committed fixture.
//!
//! The scenario catalog and the paper's uniform airfield are the repo's
//! entire input surface — benchmarks, goldens, and the differential suite
//! all assume a given `(generator, n, seed)` triple names one bit-exact
//! fleet forever. [`fleet_hash`] folds every field of every aircraft into
//! an FNV-1a digest, so any change to an RNG draw order, a parameter
//! default, or a geometry constant shows up here as a hash diff before it
//! silently invalidates downstream artifacts.

use atm::prelude::*;
use std::path::{Path, PathBuf};
use telemetry::JsonValue;

fn fixture_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/seed_hashes.json")
}

/// The `(n, seed)` pairs the fixture pins for every generator.
const PINNED: [(usize, u64); 2] = [(96, 7), (160, 2018)];

/// Hash table for every generator — the uniform paper airfield plus the
/// whole scenario catalog — at every pinned `(n, seed)` pair.
fn hash_table() -> JsonValue {
    let mut rows = Vec::new();
    for (n, seed) in PINNED {
        let uniform = Airfield::with_seed(n, seed);
        rows.push(
            JsonValue::obj()
                .set("generator", "uniform")
                .set("n", n as u64)
                .set("seed", seed)
                .set("hash", format!("{:016x}", fleet_hash(&uniform.aircraft))),
        );
        for scn in Scenario::catalog() {
            rows.push(
                JsonValue::obj()
                    .set("generator", scn.slug())
                    .set("n", n as u64)
                    .set("seed", seed)
                    .set("hash", format!("{:016x}", fleet_hash(&scn.fleet(n, seed)))),
            );
        }
    }
    JsonValue::Arr(rows)
}

#[test]
fn generator_hashes_match_golden() {
    let actual = hash_table().to_pretty();
    let path = fixture_path();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &actual).expect("write seed_hashes.json");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing {} ({e}); generate it with `UPDATE_GOLDEN=1 cargo test \
             --test seed_stability` and commit it",
            path.display()
        )
    });
    assert_eq!(
        expected, actual,
        "a generator's fleet content changed for a pinned (n, seed); if \
         intentional, regenerate the fixture with `UPDATE_GOLDEN=1 cargo \
         test --test seed_stability` and expect downstream goldens to move"
    );
}

#[test]
fn generators_are_repeatable_within_a_process() {
    assert_eq!(hash_table(), hash_table());
}

#[test]
fn every_generator_responds_to_the_seed() {
    // A generator that ignores `seed` would still pass the pinned-hash
    // test; require that changing the seed changes the fleet.
    for scn in Scenario::catalog() {
        assert_ne!(
            fleet_hash(&scn.fleet(96, 7)),
            fleet_hash(&scn.fleet(96, 8)),
            "{}: fleet did not change with the seed",
            scn.slug()
        );
    }
    assert_ne!(
        fleet_hash(&Airfield::with_seed(96, 7).aircraft),
        fleet_hash(&Airfield::with_seed(96, 8).aircraft),
    );
}
