//! End-to-end hard-real-time behaviour: the paper's §6 claims as
//! integration tests over the full simulation stack.

use atm::prelude::*;

/// The three host-side conflict-scan implementations. Deadline behaviour
/// is simulated time, so every paper claim must hold — with identical miss
/// counts — under each of them.
const SCAN_MODES: [ScanMode; 4] = [
    ScanMode::Naive,
    ScanMode::Banded,
    ScanMode::Grid,
    ScanMode::Incremental,
];

/// A simulation over the standard field with an explicit scan mode.
fn sim_with_scan(
    n: usize,
    seed: u64,
    scan: ScanMode,
    backend: Box<dyn AtmBackend>,
) -> AtmSimulation {
    let cfg = AtmConfig {
        scan,
        ..AtmConfig::with_seed(seed)
    };
    AtmSimulation::new(Airfield::new(n, cfg), backend)
}

#[test]
fn nvidia_devices_never_miss_within_the_evaluated_domain() {
    // The paper's headline: all three cards meet every deadline. The
    // evaluated domain here matches EXPERIMENTS.md (up to 8k aircraft);
    // the result must hold — identically — under every scan mode, since
    // deadline behaviour depends only on simulated time.
    for (name, make) in [
        ("9800gt", GpuBackend::geforce_9800_gt as fn() -> GpuBackend),
        ("880m", GpuBackend::gtx_880m),
        ("titan", GpuBackend::titan_x_pascal),
    ] {
        for scan in SCAN_MODES {
            let mut sim = sim_with_scan(4_000, 2018, scan, Box::new(make()));
            let out = sim.run(1);
            assert_eq!(
                out.report.total_misses(),
                0,
                "{name} missed deadlines at 4000 aircraft under {scan:?}:\n{}",
                out.report
            );
            assert_eq!(out.report.total_skips(), 0);
        }
    }
}

#[test]
fn ap_platforms_meet_deadlines_at_their_evaluated_loads() {
    for scan in SCAN_MODES {
        let mut staran = sim_with_scan(1_500, 2018, scan, Box::new(ApBackend::staran()));
        assert_eq!(staran.run(1).report.total_misses(), 0, "STARAN, {scan:?}");

        // ClearSpeed virtualizes beyond 192 PEs; the prior work evaluated
        // it at moderate loads where it held its deadlines.
        let mut cs = sim_with_scan(1_000, 2018, scan, Box::new(ApBackend::clearspeed()));
        assert_eq!(cs.run(1).report.total_misses(), 0, "ClearSpeed, {scan:?}");
    }
}

#[test]
fn xeon_baseline_misses_many_deadlines_at_scale() {
    // The qualitative claim holds per mode *and* the miss count is the
    // same number in every mode — the scan knob cannot leak into the
    // modeled schedule.
    let misses: Vec<u64> = SCAN_MODES
        .iter()
        .map(|&scan| {
            let mut sim = sim_with_scan(12_000, 2018, scan, Box::new(XeonModelBackend::new()));
            let out = sim.run(1);
            assert!(
                out.report.total_misses() >= 8,
                "the multi-core baseline must 'regularly miss a large number' \
                 at 12k under {scan:?}: {}",
                out.report
            );
            out.report.total_misses()
        })
        .collect();
    assert!(
        misses.windows(2).all(|w| w[0] == w[1]),
        "miss counts diverged across scan modes: {misses:?}"
    );
}

#[test]
fn deadline_misses_grow_with_load_on_the_xeon() {
    let misses_at = |n: usize| {
        let mut sim = AtmSimulation::with_field(n, 2018, Box::new(XeonModelBackend::new()));
        sim.run(1).report.total_misses()
    };
    let low = misses_at(1_000);
    let high = misses_at(12_000);
    assert!(
        low < high,
        "misses must grow with fleet size: {low} vs {high}"
    );
}

/// Deadline misses for one Xeon major cycle over a scenario airfield.
fn scenario_misses(scn: &Scenario, n: usize, scan: ScanMode) -> u64 {
    let cfg = AtmConfig {
        scan,
        ..AtmConfig::with_seed(2018)
    };
    let field = scn.airfield_with(n, &cfg);
    let mut sim = AtmSimulation::new(field, Box::new(XeonModelBackend::new()));
    sim.run(1).report.total_misses()
}

#[test]
fn scenario_misses_are_scan_mode_invariant() {
    // The scenario corpus feeds the same schedule contract as the uniform
    // field: per scenario, the Xeon's miss count is one number no matter
    // which host-side scan produced the conflicts. n sits just past the
    // miss onset of the densest shapes so the invariant is checked on a
    // nonzero count for most of the catalog.
    for scn in Scenario::catalog() {
        let misses: Vec<u64> = SCAN_MODES
            .iter()
            .map(|&scan| scenario_misses(&scn, 1_600, scan))
            .collect();
        assert!(
            misses.windows(2).all(|w| w[0] == w[1]),
            "{}: miss counts diverged across scan modes: {misses:?}",
            scn.slug()
        );
    }
}

#[test]
fn hotspot_surge_misses_deadlines_first_as_the_fleet_grows() {
    // The shard-hotspot surge packs most of the fleet into one dense
    // corner, so its conflict workload — and with it the Xeon's modeled
    // Tasks 2+3 time — outruns every other traffic shape: on this ladder
    // it must be the first scenario (jointly or alone) to miss a
    // deadline. The lossy radar-dropout shape sits at the other extreme
    // and must not have missed yet when the hotspot starts missing.
    const LADDER: [usize; 4] = [1_000, 1_200, 1_600, 2_000];
    let onset = |scn: &Scenario| {
        LADDER
            .iter()
            .position(|&n| scenario_misses(scn, n, ScanMode::Grid) > 0)
            .unwrap_or(LADDER.len())
    };
    let hotspot = Scenario::by_slug("hotspot").expect("hotspot in catalog");
    let hotspot_onset = onset(&hotspot);
    assert!(
        hotspot_onset < LADDER.len(),
        "the hotspot surge must miss somewhere on the ladder {LADDER:?}"
    );
    for scn in Scenario::catalog() {
        assert!(
            hotspot_onset <= onset(&scn),
            "{} started missing deadlines before the hotspot surge",
            scn.slug()
        );
    }
    let dropout = Scenario::by_slug("radar-dropout").expect("radar-dropout in catalog");
    assert!(
        onset(&dropout) > hotspot_onset,
        "the sparse radar-dropout shape should outlast the hotspot surge"
    );
}

#[test]
fn periods_never_start_early() {
    // §4.2: leftover slack is waited out. Simulated time after k major
    // cycles is exactly k * 8 s regardless of how little work there was.
    let mut sim = AtmSimulation::with_field(100, 1, Box::new(GpuBackend::titan_x_pascal()));
    let out = sim.run(3);
    let total_slack: SimDuration = out.report.periods().iter().map(|p| p.slack).sum();
    let total_used: SimDuration = out.report.periods().iter().map(|p| p.used).sum();
    assert_eq!(total_slack + total_used, SimDuration::from_secs(24));
}

#[test]
fn task_schedule_follows_the_paper() {
    // Task 1 every half-second, Tasks 2+3 only in the 16th period.
    let mut sim = AtmSimulation::with_field(200, 9, Box::new(SequentialBackend::new()));
    let out = sim.run(2);
    assert_eq!(out.report.task_stats("Task1").unwrap().count, 32);
    assert_eq!(out.report.task_stats("Task2+3").unwrap().count, 2);
    // Tasks 2+3 executions land in period 15 only: check the per-period
    // booked time jumps there.
    for p in out.report.periods() {
        if p.period != 15 {
            assert!(
                !p.missed,
                "only the detection period could ever be tight here"
            );
        }
    }
}

#[test]
fn repeated_runs_on_simulated_hardware_are_bit_identical() {
    // §6.2: "we would get the exact same timings again and again".
    let run = || {
        let mut sim = AtmSimulation::with_field(600, 77, Box::new(GpuBackend::gtx_880m()));
        let out = sim.run(1);
        (
            out.mean_task1().as_picos(),
            out.mean_task23().as_picos(),
            out.report.utilization().to_bits(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn utilization_grows_with_fleet_size() {
    let util = |n: usize| {
        let mut sim = AtmSimulation::with_field(n, 3, Box::new(GpuBackend::geforce_9800_gt()));
        sim.run(1).report.utilization()
    };
    let small = util(500);
    let large = util(4_000);
    assert!(large > small, "{small} !< {large}");
}
