//! Golden snapshot tests: small committed artifacts (a figure table, a
//! figure JSON series, a telemetry metrics snapshot) regenerated at a
//! fixed seed and byte-compared in `cargo test`.
//!
//! Every platform in these captures is deterministically *modeled*, so the
//! bytes are reproducible on any host. A mismatch means an intentional
//! model/pipeline change (regenerate with `UPDATE_GOLDEN=1 cargo test
//! --test golden`, then review the fixture diff like any other code
//! change) or an accidental determinism break (fix the code).

use atm::prelude::*;
use atm_bench::figures::{fig4, fig6};
use atm_bench::harness::Harness;
use atm_bench::sweep::SweepConfig;
use std::path::{Path, PathBuf};

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// Byte-compare `actual` against the committed fixture `name`, or rewrite
/// the fixture when `UPDATE_GOLDEN` is set.
fn assert_matches_golden(name: &str, actual: &str) {
    let path = fixture_dir().join(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(fixture_dir()).expect("create tests/golden");
        std::fs::write(&path, actual).expect("write golden fixture");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); generate it with \
             `UPDATE_GOLDEN=1 cargo test --test golden` and commit it",
            path.display()
        )
    });
    assert_eq!(
        expected, actual,
        "{name} diverged from the committed fixture; if intentional, \
         regenerate with `UPDATE_GOLDEN=1 cargo test --test golden` \
         (see EXPERIMENTS.md) and review the diff"
    );
}

/// The tiny fixed sweep all figure goldens use: small enough to run in a
/// unit-test budget, wide enough to exercise every paper platform.
fn golden_sweep(scan: ScanMode) -> SweepConfig {
    golden_sweep_sharded(scan, 1)
}

/// [`golden_sweep`] with an explicit shard grid side.
fn golden_sweep_sharded(scan: ScanMode, shards: usize) -> SweepConfig {
    SweepConfig {
        ns: vec![200, 400],
        seed: 2018,
        reps: 1,
        scan,
        shards,
    }
}

#[test]
fn fig4_track_table_matches_golden() {
    let fig = fig4(&golden_sweep(ScanMode::Grid), &Harness::serial());
    assert_matches_golden("fig4_track_table.txt", &format!("{fig}"));
}

#[test]
fn fig6_detect_json_matches_golden() {
    let fig = fig6(&golden_sweep(ScanMode::Grid), &Harness::serial());
    assert_matches_golden("fig6_detect_series.json", &fig.to_json());
}

#[test]
fn telemetry_metrics_match_golden() {
    // One major cycle of the full timed simulation per paper platform,
    // all feeding one recorder — the same capture `figures --metrics`
    // performs, shrunk to n=200.
    let recorder = Recorder::enabled();
    for entry in Roster::paper().entries() {
        let mut sim = AtmSimulation::with_field(200, 2018, entry.instantiate());
        sim.set_recorder(recorder.clone());
        sim.run(1);
    }
    assert_matches_golden("telemetry_metrics.json", &recorder.metrics_json());
}

/// The sharded counterpart of [`telemetry_metrics_match_golden`]: the same
/// capture with a 4×4 shard grid. Pinned by its own fixture so shard
/// accounting regressions are byte-caught — and since sharding is a
/// wall-clock knob only, the snapshot must also be byte-identical to the
/// unsharded fixture.
#[test]
fn sharded_telemetry_metrics_match_golden() {
    let recorder = Recorder::enabled();
    for entry in Roster::paper().entries() {
        let cfg = AtmConfig {
            shards: 4,
            ..AtmConfig::with_seed(2018)
        };
        let mut sim = AtmSimulation::new(Airfield::new(200, cfg), entry.instantiate());
        sim.set_recorder(recorder.clone());
        sim.run(1);
    }
    let actual = recorder.metrics_json();
    assert_matches_golden("telemetry_metrics_sharded.json", &actual);
    let unsharded = std::fs::read_to_string(fixture_dir().join("telemetry_metrics.json"))
        .expect("unsharded metrics fixture present");
    assert_eq!(
        unsharded, actual,
        "sharding must not change a byte of the metrics snapshot"
    );
}

// ---------- Scenario-corpus goldens ----------

/// The three representative catalog scenarios whose figure artifacts are
/// pinned byte-for-byte: a structured crossing pattern, the dense
/// vertical-stack stress case, and the shard-hotspot worst case.
const GOLDEN_SCENARIOS: [&str; 3] = ["crossing", "holding-stack", "hotspot"];

#[test]
fn scenario_figures_match_golden() {
    use atm_bench::scenarios::{scenario_figure, ScenarioSweepConfig};
    let sw = ScenarioSweepConfig::golden();
    for slug in GOLDEN_SCENARIOS {
        let scn = Scenario::by_slug(slug).expect("golden slug in catalog");
        let fig = scenario_figure(&scn, &sw, &Harness::serial());
        let fixture = format!("scn_{}.json", slug.replace('-', "_"));
        assert_matches_golden(&fixture, &fig.to_json());
        // Fanning the points across workers must not change a byte.
        let parallel = scenario_figure(&scn, &sw, &Harness::new(4));
        assert_eq!(
            fig.to_json(),
            parallel.to_json(),
            "scenario {slug}: --jobs changed the artifact"
        );
    }
}

#[test]
fn scenario_metrics_match_golden() {
    use atm_bench::scenarios::{scenario_metrics, ScenarioSweepConfig};
    let sw = ScenarioSweepConfig::golden();
    let scn = Scenario::by_slug("hotspot").expect("hotspot in catalog");
    assert_matches_golden(
        "scn_hotspot_metrics.json",
        &scenario_metrics(&scn, sw.metrics_n, sw.seed),
    );
}

#[test]
fn golden_artifacts_are_scan_and_harness_invariant() {
    // The determinism contract, end to end on the golden artifacts
    // themselves: neither the scan mode, the worker count nor the shard
    // grid may change a byte of what the fixtures pin down.
    let reference = fig6(&golden_sweep(ScanMode::Grid), &Harness::serial()).to_json();
    for scan in [
        ScanMode::Naive,
        ScanMode::Banded,
        ScanMode::Grid,
        ScanMode::Incremental,
    ] {
        for jobs in [1, 4] {
            for shards in [1, 4] {
                let other =
                    fig6(&golden_sweep_sharded(scan, shards), &Harness::new(jobs)).to_json();
                assert_eq!(
                    reference, other,
                    "scan={scan:?} jobs={jobs} shards={shards}"
                );
            }
        }
    }
}
