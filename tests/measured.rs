//! Measured-substrate determinism: the deterministic measured backends
//! (multicore thread pool, SIMD SoA) must be *byte-identical in outputs*
//! to the sequential reference across every scan mode and shard count —
//! only their reported wall-clock time may differ. This is the
//! outputs-only half of the CI determinism matrix: artifact bytes cannot
//! pin wall-clock series, so the contract is enforced here instead.

use atm::prelude::*;

fn fresh(
    n: usize,
    seed: u64,
    scan: ScanMode,
    shards: usize,
) -> (Vec<Aircraft>, Vec<RadarReport>, AtmConfig) {
    let cfg = AtmConfig {
        scan,
        shards,
        ..AtmConfig::with_seed(seed)
    };
    let mut field = Airfield::new(n, cfg);
    let radars = field.generate_radar();
    let cfg = field.config().clone();
    (field.aircraft, radars, cfg)
}

/// The deterministic measured backends under test (the MIMD host backend
/// is deliberately absent: its racing radar claims are honest
/// non-determinism, covered by invariant tests in `cross_backend`).
fn measured_backends() -> Vec<(&'static str, Box<dyn AtmBackend>)> {
    vec![
        ("multicore-1", Box::new(MulticoreBackend::new(1))),
        ("multicore-3", Box::new(MulticoreBackend::new(3))),
        ("multicore-8", Box::new(MulticoreBackend::new(8))),
        ("simd-soa", Box::new(SimdSoaBackend::new())),
    ]
}

#[test]
fn measured_detect_matches_seq_across_scan_modes_and_shards() {
    // The satellite property: {naive, banded, grid} × shards {1, 4},
    // byte-compared against the sequential reference.
    for scan in [
        ScanMode::Naive,
        ScanMode::Banded,
        ScanMode::Grid,
        ScanMode::Incremental,
    ] {
        for shards in [1usize, 4] {
            let (mut ref_ac, _, cfg) = fresh(500, 99, scan, shards);
            SequentialBackend::new().detect_resolve(&mut ref_ac, &cfg);
            for (name, mut backend) in measured_backends() {
                let (mut ac, _, cfg) = fresh(500, 99, scan, shards);
                backend.detect_resolve(&mut ac, &cfg);
                assert_eq!(
                    ac, ref_ac,
                    "{name} diverged at scan={scan:?} shards={shards}"
                );
            }
        }
    }
}

#[test]
fn measured_track_matches_seq() {
    for &(n, seed) in &[(150usize, 1u64), (700, 1234)] {
        let (mut ref_ac, mut ref_rd, cfg) = fresh(n, seed, ScanMode::Grid, 1);
        SequentialBackend::new().track_correlate(&mut ref_ac, &mut ref_rd, &cfg);
        for (name, mut backend) in measured_backends() {
            let (mut ac, mut rd, cfg) = fresh(n, seed, ScanMode::Grid, 1);
            backend.track_correlate(&mut ac, &mut rd, &cfg);
            assert_eq!(ac, ref_ac, "{name} aircraft diverged at n={n}");
            assert_eq!(rd, ref_rd, "{name} radar state diverged at n={n}");
        }
    }
}

#[test]
fn measured_terrain_matches_seq() {
    let grid = TerrainGrid::generate(11, 128.0, 48, 10_000.0);
    let tcfg = TerrainTaskConfig::default();
    let reference = {
        let (mut ac, _, _) = fresh(300, 55, ScanMode::Grid, 1);
        SequentialBackend::new().terrain_avoidance(&mut ac, &grid, &tcfg);
        ac
    };
    for (name, mut backend) in measured_backends() {
        let (mut ac, _, _) = fresh(300, 55, ScanMode::Grid, 1);
        backend.terrain_avoidance(&mut ac, &grid, &tcfg);
        assert_eq!(ac, reference, "{name} terrain diverged");
    }
}

#[test]
fn measured_full_simulation_stays_in_lockstep_with_seq() {
    // Two full major cycles end to end — radar generation, tracking,
    // detection, boundary rule — through the cyclic executive.
    let run = |backend: Box<dyn AtmBackend>| {
        let mut sim = AtmSimulation::with_field(400, 4242, backend);
        sim.run(2);
        sim.aircraft().to_vec()
    };
    let seq = run(Box::new(SequentialBackend::new()));
    for (name, backend) in measured_backends() {
        assert_eq!(run(backend), seq, "{name} diverged over two major cycles");
    }
}

#[test]
fn measured_roster_entries_are_byte_identical_through_instantiate() {
    // The catalog path (what sweeps actually run): sequential-host,
    // multicore and simd-soa entries must agree on detect outputs.
    let seq = Roster::measured()
        .get(PlatformId::SequentialHost)
        .unwrap()
        .instantiate();
    let mut seq = seq;
    let (mut ref_ac, _, cfg) = fresh(400, 7, ScanMode::Grid, 1);
    seq.detect_resolve(&mut ref_ac, &cfg);
    for platform in [PlatformId::MulticoreHost, PlatformId::SimdSoaHost] {
        let mut backend = Roster::measured().get(platform).unwrap().instantiate();
        let (mut ac, _, cfg) = fresh(400, 7, ScanMode::Grid, 1);
        backend.detect_resolve(&mut ac, &cfg);
        assert_eq!(ac, ref_ac, "{platform} diverged");
    }
}
