//! End-to-end telemetry capture: the full timed simulation with a recorder
//! attached must produce spans from every substrate, and — because every
//! captured platform is deterministically modeled — byte-identical trace
//! and metrics files across same-seed runs (the repo's determinism policy
//! extended to the observability layer).

use atm::prelude::*;

/// One major cycle on the paper's modeled platforms, all recording into a
/// single recorder; returns the two export artifacts.
fn capture(seed: u64) -> (String, String) {
    let recorder = Recorder::enabled();
    for entry in Roster::paper().entries() {
        let mut sim = AtmSimulation::with_field(400, seed, entry.instantiate());
        sim.set_recorder(recorder.clone());
        sim.run(1);
    }
    (recorder.chrome_trace(), recorder.metrics_json())
}

#[test]
fn same_seed_runs_produce_byte_identical_artifacts() {
    let (trace_a, metrics_a) = capture(2018);
    let (trace_b, metrics_b) = capture(2018);
    assert_eq!(
        trace_a, trace_b,
        "Chrome trace must be byte-identical across runs"
    );
    assert_eq!(
        metrics_a, metrics_b,
        "metrics snapshot must be byte-identical across runs"
    );
}

#[test]
fn capture_contains_spans_from_every_substrate() {
    let recorder = Recorder::enabled();
    for entry in Roster::paper().entries() {
        let mut sim = AtmSimulation::with_field(400, 7, entry.instantiate());
        sim.set_recorder(recorder.clone());
        sim.run(1);
    }
    assert!(
        recorder.spans_in_category("rt.task") > 0,
        "executive task spans"
    );
    assert!(
        recorder.spans_in_category("rt.period") > 0,
        "executive period spans"
    );
    assert!(
        recorder.spans_in_category("gpu.kernel") > 0,
        "GPU kernel spans"
    );
    assert!(
        recorder.spans_in_category("gpu.transfer") > 0,
        "GPU transfer spans"
    );
    assert!(
        recorder.spans_in_category("ap") > 0,
        "associative-machine spans"
    );
    // Every period of every platform is booked: 6 platforms x 16 periods.
    assert_eq!(recorder.counter("rt.periods"), 6 * 16);

    let trace = recorder.chrome_trace();
    for track in ["rt-sched", "gpu: Titan X (Pascal)", "ap: STARAN AP"] {
        assert!(trace.contains(track), "trace must name the {track} track");
    }
}

#[test]
fn disabled_recorder_changes_nothing_and_records_nothing() {
    let run = |record: bool| {
        let mut sim = AtmSimulation::with_field(300, 11, Box::new(GpuBackend::titan_x_pascal()));
        if record {
            sim.set_recorder(Recorder::enabled());
        }
        let out = sim.run(1);
        (
            out.mean_task1(),
            out.mean_task23(),
            out.report.total_misses(),
        )
    };
    assert_eq!(
        run(false),
        run(true),
        "recording must not perturb simulated timing"
    );
}
