//! Live-server vs batch-replay determinism (DESIGN.md §14).
//!
//! A live `atm-server` session — ingest batches arriving between major
//! cycles over TCP — must be reproducible offline: re-feeding the
//! recorded ingest log through the batch [`AtmEngine`] via
//! [`replay_log`] has to produce byte-identical `CycleReport` JSON,
//! fleet hashes and telemetry metrics. Checked across shard counts
//! {1, 4} × {Grid, Incremental} scans on the hotspot scenario (the
//! densest catalog shape, where dirty-cell bookkeeping earns its keep).
//!
//! [`AtmEngine`]: atm_core::AtmEngine
//! [`replay_log`]: atm_server::replay_log

use atm_core::AircraftUpdate;
use atm_core::ScanMode;
use atm_server::proto::{entry_from_json, updates_to_json};
use atm_server::{replay_log, AtmServer, LogEntry, ServerSpec};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use telemetry::{parse_json, JsonValue};

struct Client {
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        Client {
            reader: BufReader::new(TcpStream::connect(addr).unwrap()),
        }
    }

    fn send(&mut self, line: &str) -> JsonValue {
        let mut w = self.reader.get_ref().try_clone().unwrap();
        w.write_all(line.as_bytes()).unwrap();
        w.write_all(b"\n").unwrap();
        let mut response = String::new();
        self.reader.read_line(&mut response).unwrap();
        parse_json(response.trim()).unwrap()
    }
}

/// A deterministic ingest batch: `count` aircraft teleported and
/// re-vectored, derived only from `(round, count)`.
fn batch(round: u64, count: u32) -> Vec<AircraftUpdate> {
    (0..count)
        .map(|i| {
            let k = round * 37 + u64::from(i) * 11;
            AircraftUpdate {
                id: (k % 200) as u32,
                x: ((k % 640) as f32) - 320.0,
                y: ((k % 580) as f32) - 290.0,
                alt: 8_000.0 + ((k % 47) as f32) * 500.0,
                dx: 0.01 + ((k % 5) as f32) * 0.005,
                dy: -0.01 - ((k % 3) as f32) * 0.005,
            }
        })
        .collect()
}

/// Run one live session (ingest + step over TCP), pull its log, shut it
/// down, and byte-compare the batch replay against everything the live
/// side produced.
fn assert_replay_matches_live(scan: ScanMode, shards: usize) {
    const CYCLES: u64 = 3;
    let metrics_path = std::env::temp_dir().join(format!(
        "atm_replay_metrics_{scan:?}_{shards}_{}.json",
        std::process::id()
    ));
    let spec = ServerSpec {
        n: 200,
        seed: 11,
        scenario: Some("hotspot".to_owned()),
        scan,
        shards,
        metrics_path: Some(metrics_path.to_string_lossy().into_owned()),
        ..ServerSpec::default()
    };

    let server = AtmServer::bind(spec.clone(), "127.0.0.1:0").unwrap();
    let addr = server.local_addr();
    let handle = server.spawn();

    let mut c = Client::connect(addr);
    let mut live_reports: Vec<String> = Vec::new();
    for cycle in 0..CYCLES {
        // Two batches land before every cycle, none before the last —
        // exercising both multi-entry and empty boundaries.
        if cycle < CYCLES - 1 {
            for sub in 0..2 {
                let request = JsonValue::obj()
                    .set("verb", "ingest")
                    .set("updates", updates_to_json(&batch(cycle * 2 + sub, 24)));
                let r = c.send(&request.to_compact());
                assert_eq!(r.get("ok"), Some(&JsonValue::Bool(true)));
            }
        }
        let r = c.send("{\"verb\":\"step\"}");
        let reports = r.get("reports").unwrap().as_arr().unwrap();
        live_reports.extend(reports.iter().map(JsonValue::to_compact));
    }

    let log_response = c.send("{\"verb\":\"log\"}");
    let log: Vec<LogEntry> = log_response
        .get("entries")
        .unwrap()
        .as_arr()
        .unwrap()
        .iter()
        .map(|e| entry_from_json(e).unwrap())
        .collect();
    assert_eq!(log.len(), (CYCLES as usize - 1) * 2);

    c.send("{\"verb\":\"shutdown\"}");
    handle.join().unwrap();
    let live_metrics = std::fs::read_to_string(&metrics_path).unwrap();
    std::fs::remove_file(&metrics_path).ok();

    let replay = replay_log(&spec, &log, CYCLES).unwrap();
    let replay_reports: Vec<String> = replay
        .reports
        .iter()
        .map(|r| r.to_json().to_compact())
        .collect();
    assert_eq!(
        replay_reports, live_reports,
        "CycleReports must replay byte-identically ({scan:?}, shards={shards})"
    );
    assert_eq!(
        replay.metrics_json, live_metrics,
        "telemetry metrics must replay byte-identically ({scan:?}, shards={shards})"
    );
}

#[test]
fn replay_matches_live_grid_unsharded() {
    assert_replay_matches_live(ScanMode::Grid, 1);
}

#[test]
fn replay_matches_live_grid_sharded() {
    assert_replay_matches_live(ScanMode::Grid, 4);
}

#[test]
fn replay_matches_live_incremental_unsharded() {
    assert_replay_matches_live(ScanMode::Incremental, 1);
}

#[test]
fn replay_matches_live_incremental_sharded() {
    assert_replay_matches_live(ScanMode::Incremental, 4);
}

/// The fleet hashes inside the replayed reports are real: independently
/// recomputing the hash from a third engine stepping the same spec and
/// log gives the same sequence.
#[test]
fn replayed_fleet_hashes_are_independent_of_the_transport() {
    let spec = ServerSpec {
        n: 150,
        seed: 3,
        scenario: Some("hotspot".to_owned()),
        ..ServerSpec::default()
    };
    let log = vec![
        LogEntry {
            seq: 1,
            cycle: 0,
            updates: batch(0, 10),
        },
        LogEntry {
            seq: 2,
            cycle: 1,
            updates: batch(1, 10),
        },
    ];
    let a = replay_log(&spec, &log, 2).unwrap();
    let b = replay_log(&spec, &log, 2).unwrap();
    for (ra, rb) in a.reports.iter().zip(&b.reports) {
        assert_eq!(ra.fleet_hash, rb.fleet_hash);
    }
}
