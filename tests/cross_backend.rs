//! Cross-backend equivalence: the deterministic platforms must produce
//! *identical* functional results — they differ only in modeled time.
//!
//! This is the linchpin of the reproduction: the paper compares execution
//! time of the *same* tasks across architectures, so our backends must be
//! functionally interchangeable. The sequential host implementation is the
//! reference; the simulated GPUs (all three cards), the APs (both
//! profiles) and the modeled Xeon must match it exactly; the real-thread
//! MIMD backend must satisfy the tasks' invariants (its races are real).

use atm::prelude::*;

fn fresh(n: usize, seed: u64) -> (Vec<Aircraft>, Vec<RadarReport>, AtmConfig) {
    let mut field = Airfield::with_seed(n, seed);
    let radars = field.generate_radar();
    let cfg = field.config().clone();
    (field.aircraft, radars, cfg)
}

fn run_track(
    backend: &mut dyn AtmBackend,
    n: usize,
    seed: u64,
) -> (Vec<Aircraft>, Vec<RadarReport>) {
    let (mut ac, mut rd, cfg) = fresh(n, seed);
    backend.track_correlate(&mut ac, &mut rd, &cfg);
    (ac, rd)
}

fn run_detect(backend: &mut dyn AtmBackend, n: usize, seed: u64) -> Vec<Aircraft> {
    let (mut ac, _, cfg) = fresh(n, seed);
    backend.detect_resolve(&mut ac, &cfg);
    ac
}

/// Semantic equality for Task 1 outcomes (batx/baty are backend scratch
/// during tracking).
fn track_equal(a: &[Aircraft], b: &[Aircraft]) -> bool {
    a.iter().zip(b).all(|(x, y)| {
        x.x == y.x && x.y == y.y && x.dx == y.dx && x.dy == y.dy && x.r_match == y.r_match
    })
}

#[test]
fn all_deterministic_backends_agree_on_task1() {
    for &(n, seed) in &[(150usize, 1u64), (400, 77), (777, 1234)] {
        let (ref_ac, ref_rd) = run_track(&mut SequentialBackend::new(), n, seed);
        let mut others: Vec<(&str, Box<dyn AtmBackend>)> = vec![
            ("9800gt", Box::new(GpuBackend::geforce_9800_gt())),
            ("880m", Box::new(GpuBackend::gtx_880m())),
            ("titan", Box::new(GpuBackend::titan_x_pascal())),
            ("staran", Box::new(ApBackend::staran())),
            ("clearspeed", Box::new(ApBackend::clearspeed())),
            ("xeon-model", Box::new(XeonModelBackend::new())),
        ];
        for (name, backend) in others.iter_mut() {
            let (ac, rd) = run_track(backend.as_mut(), n, seed);
            assert!(
                track_equal(&ac, &ref_ac),
                "{name} diverged from the sequential reference at n={n} seed={seed}"
            );
            assert_eq!(
                rd, ref_rd,
                "{name} radar state diverged at n={n} seed={seed}"
            );
        }
    }
}

#[test]
fn all_deterministic_backends_agree_on_tasks23() {
    for &(n, seed) in &[(150usize, 2u64), (500, 99)] {
        let ref_ac = run_detect(&mut SequentialBackend::new(), n, seed);
        let mut others: Vec<(&str, Box<dyn AtmBackend>)> = vec![
            ("9800gt", Box::new(GpuBackend::geforce_9800_gt())),
            ("880m", Box::new(GpuBackend::gtx_880m())),
            ("titan", Box::new(GpuBackend::titan_x_pascal())),
            ("staran", Box::new(ApBackend::staran())),
            ("clearspeed", Box::new(ApBackend::clearspeed())),
            ("xeon-model", Box::new(XeonModelBackend::new())),
        ];
        for (name, backend) in others.iter_mut() {
            let ac = run_detect(backend.as_mut(), n, seed);
            assert_eq!(ac, ref_ac, "{name} diverged at n={n} seed={seed}");
        }
    }
}

#[test]
fn multi_cycle_simulation_agrees_between_gpu_and_sequential() {
    // Two full major cycles end to end: radar generation, tracking,
    // detection, boundary rule — the whole pipeline must stay in lockstep.
    let run = |backend: Box<dyn AtmBackend>| {
        let mut sim = AtmSimulation::with_field(300, 4242, backend);
        sim.run(2);
        sim.aircraft()
            .iter()
            .map(|a| (a.x, a.y, a.dx, a.dy))
            .collect::<Vec<_>>()
    };
    let gpu = run(Box::new(GpuBackend::titan_x_pascal()));
    let seq = run(Box::new(SequentialBackend::new()));
    assert_eq!(gpu, seq);
}

#[test]
fn multi_cycle_simulation_agrees_between_ap_and_sequential() {
    let run = |backend: Box<dyn AtmBackend>| {
        let mut sim = AtmSimulation::with_field(250, 777, backend);
        sim.run(2);
        sim.aircraft()
            .iter()
            .map(|a| (a.x, a.y, a.dx, a.dy))
            .collect::<Vec<_>>()
    };
    let ap = run(Box::new(ApBackend::staran()));
    let seq = run(Box::new(SequentialBackend::new()));
    assert_eq!(ap, seq);
}

#[test]
fn mimd_backend_satisfies_task1_invariants() {
    let n = 500;
    let mut backend = MimdBackend::new(4);
    let (ac, rd) = run_track(&mut backend, n, 31);

    // Invariant 1: every matched radar points at a real aircraft.
    for r in &rd {
        if r.matched() {
            let p = r.r_match_with as usize;
            assert!(p < n, "radar points at aircraft {p} out of {n}");
        }
    }
    // Invariant 2: aircraft marked MATCH_ONE sit at a radar position or at
    // their expected position (if a racing radar was later invalidated).
    // Every aircraft must be finite and inside the (expanded) field.
    for a in &ac {
        assert!(a.x.is_finite() && a.y.is_finite());
    }
    // Invariant 3: most of a clean fleet correlates despite racing.
    let matched = ac.iter().filter(|a| a.r_match == 1).count();
    assert!(matched > n * 8 / 10, "only {matched}/{n} matched");
}

#[test]
fn modeled_times_rank_platforms_like_the_paper() {
    // Fig. 4/6 ordering at one representative point: GPUs fastest,
    // STARAN linear but slower, Xeon slowest of the modeled platforms.
    let n = 2_000;
    let seed = 5;
    let time_of = |mut b: Box<dyn AtmBackend>| {
        let (mut ac, mut rd, cfg) = fresh(n, seed);
        b.track_correlate(&mut ac, &mut rd, &cfg)
    };
    let titan = time_of(Box::new(GpuBackend::titan_x_pascal()));
    let m880 = time_of(Box::new(GpuBackend::gtx_880m()));
    let gt9800 = time_of(Box::new(GpuBackend::geforce_9800_gt()));
    let staran = time_of(Box::new(ApBackend::staran()));
    let xeon = time_of(Box::new(XeonModelBackend::new()));

    assert!(titan < m880, "titan {titan} vs 880m {m880}");
    assert!(m880 < gt9800, "880m {m880} vs 9800gt {gt9800}");
    assert!(gt9800 < xeon, "9800gt {gt9800} vs xeon {xeon}");
    assert!(staran < xeon, "staran {staran} vs xeon {xeon}");
}

#[test]
fn timing_kinds_are_declared_correctly() {
    // info().timing is the single source of truth (the old trait-level
    // timing_kind() shorthand is gone).
    assert_eq!(
        GpuBackend::titan_x_pascal().info().timing,
        TimingKind::Modeled
    );
    assert_eq!(ApBackend::staran().info().timing, TimingKind::Modeled);
    assert_eq!(XeonModelBackend::new().info().timing, TimingKind::Modeled);
    assert_eq!(SequentialBackend::new().info().timing, TimingKind::Measured);
    assert_eq!(MimdBackend::new(2).info().timing, TimingKind::Measured);
    assert_eq!(MulticoreBackend::new(2).info().timing, TimingKind::Measured);
    assert_eq!(SimdSoaBackend::new().info().timing, TimingKind::Measured);
}

#[test]
fn all_deterministic_backends_agree_on_terrain_avoidance() {
    use atm_core::terrain::{TerrainGrid, TerrainTaskConfig};
    let grid = TerrainGrid::generate(11, 128.0, 48, 10_000.0);
    let tcfg = TerrainTaskConfig::default();
    let reference = {
        let (mut ac, _, _) = fresh(300, 55);
        SequentialBackend::new().terrain_avoidance(&mut ac, &grid, &tcfg);
        ac
    };
    let mut others: Vec<(&str, Box<dyn AtmBackend>)> = vec![
        ("titan", Box::new(GpuBackend::titan_x_pascal())),
        ("9800gt", Box::new(GpuBackend::geforce_9800_gt())),
        ("staran", Box::new(ApBackend::staran())),
        ("clearspeed", Box::new(ApBackend::clearspeed())),
        ("xeon-model", Box::new(XeonModelBackend::new())),
        ("mimd", Box::new(MimdBackend::new(4))),
    ];
    for (name, backend) in others.iter_mut() {
        let (mut ac, _, _) = fresh(300, 55);
        backend.terrain_avoidance(&mut ac, &grid, &tcfg);
        // Terrain avoidance has no cross-aircraft interaction, so even the
        // threaded MIMD backend must agree exactly.
        let alt_equal = ac
            .iter()
            .zip(&reference)
            .all(|(a, b)| a.alt == b.alt && a.x == b.x && a.y == b.y);
        assert!(alt_equal, "{name} terrain results diverged");
    }
}

#[test]
fn terrain_on_ap_is_constant_time_in_fleet_size() {
    use atm_core::terrain::{TerrainGrid, TerrainTaskConfig};
    let grid = TerrainGrid::generate(11, 128.0, 48, 10_000.0);
    let tcfg = TerrainTaskConfig::default();
    let time_at = |n: usize| {
        let (mut ac, _, _) = fresh(n, 56);
        let mut ap = ApBackend::staran();
        ap.terrain_avoidance(&mut ac, &grid, &tcfg)
    };
    let t1 = time_at(500);
    let t2 = time_at(5_000);
    // Only the record I/O grows with n; the associative steps are constant.
    // I/O is linear, so allow that, but the growth must be far below the
    // 10x a per-aircraft loop would show on a sequential machine... it is
    // exactly the I/O ratio here.
    let ratio = t2.as_picos() as f64 / t1.as_picos() as f64;
    assert!(ratio < 11.0, "ratio {ratio}");
    // And the pure associative portion is identical: re-check with I/O
    // subtracted via a zero-fleet baseline is overkill; the key property
    // (documented) is steps == samples + 2 regardless of n.
}
