//! Randomized-but-deterministic tests over the core data structures and
//! algorithm invariants. Each test drives a fixed-seed [`SimRng`] through a
//! few dozen cases, so failures reproduce exactly without any external
//! property-testing framework.

use atm::prelude::*;
use atm_core::batcher::{axis_window, conflict_window};
use atm_core::detect::{check_collision_path, rotate_velocity};
use atm_core::track::track_correlate;
use sim_clock::{NullSink, SimRng};

const HORIZON: f32 = 2_400.0;

/// A plausible aircraft anywhere in the field with a realistic velocity.
fn arb_aircraft(rng: &mut SimRng) -> Aircraft {
    let x = rng.range_f32_inclusive(-128.0, 128.0);
    let y = rng.range_f32_inclusive(-128.0, 128.0);
    let dx = rng.range_f32_inclusive(-0.1, 0.1);
    let dy = rng.range_f32_inclusive(-0.1, 0.1);
    let alt = rng.range_f32_inclusive(1_000.0, 40_000.0);
    Aircraft::at(x, y).with_velocity(dx, dy).with_altitude(alt)
}

fn uniform_f64(rng: &mut SimRng, lo: f64, hi: f64) -> f64 {
    let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
    lo + (hi - lo) * unit
}

// ---------- Batcher windows ----------

#[test]
fn axis_window_is_within_bounds() {
    let mut rng = SimRng::seed_from_u64(0xA1);
    for _ in 0..64 {
        let pos = rng.range_f32_inclusive(-300.0, 300.0);
        let vel = rng.range_f32_inclusive(-1.0, 1.0);
        let sep = rng.range_f32_inclusive(0.1, 10.0);
        if let Some((lo, hi)) = axis_window(pos, vel, sep, HORIZON, &mut NullSink) {
            assert!(lo >= 0.0);
            assert!(hi <= HORIZON);
            assert!(lo <= hi);
        }
    }
}

#[test]
fn axis_window_matches_brute_force_sampling() {
    let mut rng = SimRng::seed_from_u64(0xA2);
    for _ in 0..64 {
        let pos = rng.range_f32_inclusive(-100.0, 100.0);
        let vel = rng.range_f32_inclusive(-0.5, 0.5);
        // Sample the trajectory: the analytic window and the sampled
        // violation set must agree (up to sampling resolution at the edges).
        let sep = 3.0f32;
        let window = axis_window(pos, vel, sep, HORIZON, &mut NullSink);
        let step = 1.0f32;
        let mut t = 0.0f32;
        while t <= HORIZON {
            let violating = (pos + vel * t).abs() <= sep;
            match window {
                Some((lo, hi)) => {
                    // Strictly inside the window must violate; strictly
                    // outside must not (1-step guard band for f32 edges).
                    if t > lo + step && t < hi - step {
                        assert!(violating, "t={t} inside ({lo},{hi}) but not violating");
                    }
                    if t < lo - step || t > hi + step {
                        assert!(!violating, "t={t} outside ({lo},{hi}) but violating");
                    }
                }
                None => {
                    // A guard band around exact tangency.
                    let d = (pos + vel * t).abs();
                    assert!(d > sep - 0.51, "no window but violation at t={t} (d={d})");
                }
            }
            t += step;
        }
    }
}

#[test]
fn conflict_window_is_symmetric_in_the_pair() {
    let mut rng = SimRng::seed_from_u64(0xA3);
    for _ in 0..64 {
        let a = arb_aircraft(&mut rng);
        let b = arb_aircraft(&mut rng);
        // Swapping track and trial (with their own velocities) must yield
        // the same window: relative geometry is symmetric.
        let w1 = conflict_window(&a, (a.dx, a.dy), &b, 3.0, HORIZON, &mut NullSink);
        let w2 = conflict_window(&b, (b.dx, b.dy), &a, 3.0, HORIZON, &mut NullSink);
        match (w1, w2) {
            (None, None) => {}
            (Some((l1, h1)), Some((l2, h2))) => {
                assert!((l1 - l2).abs() < 1e-2, "{l1} vs {l2}");
                assert!((h1 - h2).abs() < 1e-2, "{h1} vs {h2}");
            }
            other => panic!("asymmetric windows: {other:?}"),
        }
    }
}

#[test]
fn coincident_aircraft_always_conflict() {
    let mut rng = SimRng::seed_from_u64(0xA4);
    for _ in 0..64 {
        // An aircraft exactly on top of another (same velocity) violates
        // separation for the whole horizon.
        let a = arb_aircraft(&mut rng);
        let b = a;
        let w = conflict_window(&a, (a.dx, a.dy), &b, 3.0, HORIZON, &mut NullSink);
        assert_eq!(w, Some((0.0, HORIZON)));
    }
}

// ---------- Rotation (Task 3) ----------

#[test]
fn rotation_preserves_speed() {
    let mut rng = SimRng::seed_from_u64(0xA5);
    for _ in 0..64 {
        let vx = rng.range_f32_inclusive(-1.0, 1.0);
        let vy = rng.range_f32_inclusive(-1.0, 1.0);
        let angle = rng.range_f32_inclusive(-3.2, 3.2);
        let (rx, ry) = rotate_velocity((vx, vy), angle, &mut NullSink);
        let before = (vx * vx + vy * vy).sqrt();
        let after = (rx * rx + ry * ry).sqrt();
        assert!((before - after).abs() < 1e-4 * (1.0 + before));
    }
}

#[test]
fn opposite_rotations_cancel() {
    let mut rng = SimRng::seed_from_u64(0xA6);
    for _ in 0..64 {
        let vx = rng.range_f32_inclusive(-1.0, 1.0);
        let vy = rng.range_f32_inclusive(-1.0, 1.0);
        let angle = rng.range_f32_inclusive(0.01, 1.0);
        let fwd = rotate_velocity((vx, vy), angle, &mut NullSink);
        let back = rotate_velocity(fwd, -angle, &mut NullSink);
        assert!((back.0 - vx).abs() < 1e-4);
        assert!((back.1 - vy).abs() < 1e-4);
    }
}

// ---------- Task 1 invariants over random fleets ----------

#[test]
fn track_state_machine_invariants() {
    let mut rng = SimRng::seed_from_u64(0xA7);
    for _ in 0..48 {
        let seed = rng.next_u64() % 10_000;
        let n = 2 + (rng.next_u64() % 118) as usize;
        let mut field = Airfield::with_seed(n, seed);
        let mut radars = field.generate_radar();
        let cfg = field.config().clone();
        let stats = track_correlate(&mut field.aircraft, &mut radars, &cfg, &mut NullSink);

        // Counting identity: every aircraft is in exactly one match state.
        let none = field.aircraft.iter().filter(|a| a.r_match == 0).count() as u64;
        assert_eq!(stats.matched + stats.dropped_aircraft + none, n as u64);

        // Radar bookkeeping: matched + discarded + unmatched = all radars.
        let matched_radars = radars.iter().filter(|r| r.matched()).count() as u64;
        assert_eq!(
            matched_radars + stats.discarded_radars + stats.unmatched_radars,
            n as u64
        );

        // A radar that claims aircraft p and survives validation implies
        // the aircraft really is in MATCH_ONE... or was dropped later.
        for r in &radars {
            if r.matched() {
                let p = r.r_match_with as usize;
                assert!(p < n);
                assert!(field.aircraft[p].r_match == 1 || field.aircraft[p].r_match == -1);
            }
        }

        // No two *matched* radars point at the same aircraft in MATCH_ONE.
        let mut seen = vec![0u32; n];
        for r in &radars {
            if r.matched() && field.aircraft[r.r_match_with as usize].r_match == 1 {
                seen[r.r_match_with as usize] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c <= 1), "two radars own one aircraft");
    }
}

// ---------- Tasks 2+3 invariants ----------

#[test]
fn resolution_preserves_every_speed() {
    let mut rng = SimRng::seed_from_u64(0xA8);
    for _ in 0..32 {
        let seed = rng.next_u64() % 5_000;
        let n = 2 + (rng.next_u64() % 58) as usize;
        let mut field = Airfield::with_seed(n, seed);
        let cfg = field.config().clone();
        let speeds: Vec<f32> = field.aircraft.iter().map(|a| a.speed()).collect();
        for i in 0..n {
            check_collision_path(&mut field.aircraft, i, &cfg, &mut NullSink);
        }
        for (a, s0) in field.aircraft.iter().zip(speeds) {
            assert!((a.speed() - s0).abs() < 1e-3 * (1.0 + s0), "speed changed");
        }
    }
}

#[test]
fn committed_paths_have_no_critical_conflicts_left_behind() {
    let mut rng = SimRng::seed_from_u64(0xA9);
    for _ in 0..32 {
        let seed = rng.next_u64() % 2_000;
        let n = 2 + (rng.next_u64() % 48) as usize;
        let mut field = Airfield::with_seed(n, seed);
        let cfg = field.config().clone();
        for i in 0..n {
            let before = field.aircraft[i];
            let s = check_collision_path(&mut field.aircraft, i, &cfg, &mut NullSink);
            if s.resolved == 1 {
                // The committed path differs from the original and is
                // verified conflict-free at commit time (against the fleet
                // as it stood). Direction changed, speed didn't.
                let after = field.aircraft[i];
                assert!(after.dx != before.dx || after.dy != before.dy);
                assert!(!after.col);
            }
        }
    }
}

// ---------- Airfield generator ----------

#[test]
fn setup_respects_all_configured_ranges() {
    let mut rng = SimRng::seed_from_u64(0xAA);
    for _ in 0..48 {
        let seed = rng.next_u64() % 10_000;
        let n = 1 + (rng.next_u64() % 199) as usize;
        let field = Airfield::with_seed(n, seed);
        let cfg = field.config();
        for a in &field.aircraft {
            assert!(a.x.abs() <= cfg.half_width);
            assert!(a.y.abs() <= cfg.half_width);
            assert!(a.alt >= cfg.alt_min_ft && a.alt <= cfg.alt_max_ft);
            let kts = a.speed() * cfg.periods_per_hour;
            assert!(kts >= cfg.speed_min_kts - 0.5);
            assert!(kts <= cfg.speed_max_kts + 0.5);
        }
    }
}

#[test]
fn quarter_shuffle_is_a_permutation() {
    for n in 0usize..200 {
        let mut v: Vec<usize> = (0..n).collect();
        atm_core::airfield::shuffle_quarters(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..n).collect::<Vec<_>>());
    }
}

// ---------- Simulated time ----------

#[test]
fn sim_duration_add_sub_roundtrip() {
    let mut rng = SimRng::seed_from_u64(0xAB);
    for _ in 0..64 {
        let a = rng.next_u64() % (u64::MAX / 4);
        let b = rng.next_u64() % (u64::MAX / 4);
        let da = SimDuration::from_picos(a);
        let db = SimDuration::from_picos(b);
        assert_eq!((da + db) - db, da);
        assert_eq!(da.saturating_sub(db) + db.min(da + db), da.max(db));
    }
}

#[test]
fn sim_duration_ordering_matches_picos() {
    let mut rng = SimRng::seed_from_u64(0xAC);
    for _ in 0..64 {
        let a = rng.next_u64();
        let b = rng.next_u64();
        let da = SimDuration::from_picos(a);
        let db = SimDuration::from_picos(b);
        assert_eq!(da.cmp(&db), a.cmp(&b));
    }
}

// ---------- Curve fitting ----------

#[test]
fn polyfit_recovers_planted_lines() {
    let mut rng = SimRng::seed_from_u64(0xAD);
    for _ in 0..48 {
        let intercept = uniform_f64(&mut rng, -100.0, 100.0);
        let slope = uniform_f64(&mut rng, -10.0, 10.0);
        let x: Vec<f64> = (0..24).map(|i| (i * 700) as f64).collect();
        let y: Vec<f64> = x.iter().map(|&v| intercept + slope * v).collect();
        let fit = fit_poly(&x, &y, 1).unwrap();
        assert!((fit.poly.coeff(0) - intercept).abs() < 1e-5 * (1.0 + intercept.abs()));
        assert!((fit.poly.coeff(1) - slope).abs() < 1e-8 * (1.0 + slope.abs()));
        assert!(fit.gof.r_squared > 1.0 - 1e-9);
    }
}

#[test]
fn polyfit_residuals_never_beat_higher_degree() {
    // SSE of a degree-2 fit can never exceed the degree-1 fit's SSE on
    // the same data (nested models).
    for seed in 0u64..48 {
        let mut state = (seed * 19 + 3).wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut noise = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        };
        let x: Vec<f64> = (0..16).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|&v| 2.0 * v + noise()).collect();
        let lin = fit_poly(&x, &y, 1).unwrap();
        let quad = fit_poly(&x, &y, 2).unwrap();
        assert!(quad.gof.sse <= lin.gof.sse + 1e-9);
    }
}

// ---------- Fast scans (banded, grid) vs. naive scan ----------

/// A fleet whose altitudes cluster into a handful of flight levels, so the
/// banded index actually prunes (random altitudes over the full range would
/// leave most buckets singleton and prove little about correctness under
/// contention).
fn arb_fleet(rng: &mut SimRng, n: usize) -> Vec<Aircraft> {
    (0..n)
        .map(|_| {
            let mut a = arb_aircraft(rng);
            // 8 levels, 900 ft apart: within/adjacent/distant band pairs.
            a.alt = 5_000.0 + (rng.next_u64() % 8) as f32 * 900.0;
            a
        })
        .collect()
}

fn scan_cfg(seed: u64, scan: ScanMode) -> AtmConfig {
    sharded_cfg(seed, scan, 1)
}

fn sharded_cfg(seed: u64, scan: ScanMode, shards: usize) -> AtmConfig {
    AtmConfig {
        scan,
        shards,
        ..AtmConfig::with_seed(seed)
    }
}

/// Run Tasks 2+3 end to end under `cfg` and return everything observable:
/// the mutated fleet, the detection statistics, and the booked op totals.
fn full_detect(
    fleet: &[Aircraft],
    cfg: &AtmConfig,
) -> (
    Vec<Aircraft>,
    atm_core::detect::DetectStats,
    sim_clock::OpCounter,
) {
    use atm_core::detect::detect_resolve_all;
    let mut aircraft = fleet.to_vec();
    let mut ops = sim_clock::OpCounter::new();
    let stats = detect_resolve_all(&mut aircraft, cfg, &mut ops);
    (aircraft, stats, ops)
}

/// Assert the conformance contract on one fleet/config: every fast path —
/// banded, grid, and every (shard grid × scan mode) combination — must
/// match the unsharded naive scan in mutated fleet, stats, and booked
/// costs, bit for bit.
fn assert_scans_agree(fleet: &[Aircraft], base: &AtmConfig, label: &str) {
    let naive = full_detect(
        fleet,
        &AtmConfig {
            scan: ScanMode::Naive,
            shards: 1,
            ..base.clone()
        },
    );
    for shards in [1usize, 2, 3, 4] {
        for scan in [
            ScanMode::Naive,
            ScanMode::Banded,
            ScanMode::Grid,
            ScanMode::Incremental,
        ] {
            if shards == 1 && scan == ScanMode::Naive {
                continue;
            }
            let fast = full_detect(
                fleet,
                &AtmConfig {
                    scan,
                    shards,
                    ..base.clone()
                },
            );
            assert_eq!(
                naive.0, fast.0,
                "{label}: fleets diverged under {scan:?} shards={shards}"
            );
            assert_eq!(
                naive.1, fast.1,
                "{label}: stats diverged under {scan:?} shards={shards}"
            );
            assert_eq!(
                naive.2, fast.2,
                "{label}: costs diverged under {scan:?} shards={shards}"
            );
        }
    }
}

#[test]
fn fast_scans_equal_naive_on_random_fleets() {
    let mut rng = SimRng::seed_from_u64(0xB0);
    for case in 0..24 {
        let n = 2 + (rng.next_u64() % 120) as usize;
        let fleet = arb_fleet(&mut rng, n);
        assert_scans_agree(
            &fleet,
            &AtmConfig::with_seed(1),
            &format!("case {case} (n={n})"),
        );
    }
}

#[test]
fn fast_scans_equal_naive_when_every_aircraft_shares_one_cell() {
    // Degenerate pruning: the whole fleet inside a radius far smaller than
    // the ~56 nm cell, so the grid collapses to a single populated cell
    // and the scan must behave exactly like the naive loop.
    let mut rng = SimRng::seed_from_u64(0xB2);
    for case in 0..8 {
        let n = 2 + (rng.next_u64() % 60) as usize;
        let fleet: Vec<Aircraft> = (0..n)
            .map(|_| {
                let mut a = arb_aircraft(&mut rng);
                a.x = rng.range_f32_inclusive(-8.0, 8.0);
                a.y = rng.range_f32_inclusive(-8.0, 8.0);
                a.alt = 9_000.0 + (rng.next_u64() % 4) as f32 * 800.0;
                a
            })
            .collect();
        assert_scans_agree(
            &fleet,
            &AtmConfig::with_seed(2),
            &format!("one-cell case {case}"),
        );
    }
}

#[test]
fn fast_scans_equal_naive_on_cell_boundary_positions() {
    // Aircraft sitting *exactly* on grid-cell boundaries (integer multiples
    // of the derived cell width): floor-bucketing assigns each to exactly
    // one cell, and pairs one cell apart sit exactly one reach from each
    // other — the adjacency window must still cover every gate passer.
    let cfg = AtmConfig::with_seed(3);
    let cell = cfg.critical_reach_nm() as f64 * 1.000_001;
    let mut rng = SimRng::seed_from_u64(0xB3);
    let mut fleet = Vec::new();
    for kx in -2i64..=2 {
        for ky in -2i64..=2 {
            let mut a = arb_aircraft(&mut rng);
            a.x = ((kx as f64) * cell) as f32;
            a.y = ((ky as f64) * cell) as f32;
            a.alt = 10_000.0 + ((kx + ky).rem_euclid(3)) as f32 * 900.0;
            fleet.push(a);
            // A partner a hair inside the same corner, same band.
            let mut b = arb_aircraft(&mut rng);
            b.x = a.x - 0.25;
            b.y = a.y - 0.25;
            b.alt = a.alt + 100.0;
            fleet.push(b);
        }
    }
    assert_scans_agree(&fleet, &cfg, "cell-boundary lattice");
}

#[test]
fn fast_scans_equal_naive_on_a_fleet_hugging_the_field_edge() {
    // Everything pinned to the ±128 nm rim (corners and edges): the grid's
    // populated cells form a hollow ring, min/max cell offsets are extreme,
    // and clamping at the rim must not lose adjacency.
    let mut rng = SimRng::seed_from_u64(0xB4);
    let mut fleet = Vec::new();
    for i in 0..48 {
        let mut a = arb_aircraft(&mut rng);
        let along = rng.range_f32_inclusive(-128.0, 128.0);
        let rim = 128.0 - rng.range_f32_inclusive(0.0, 0.5);
        match i % 4 {
            0 => {
                a.x = along;
                a.y = rim;
            }
            1 => {
                a.x = along;
                a.y = -rim;
            }
            2 => {
                a.x = rim;
                a.y = along;
            }
            _ => {
                a.x = -rim;
                a.y = along;
            }
        }
        a.alt = 20_000.0 + (i % 5) as f32 * 900.0;
        fleet.push(a);
    }
    assert_scans_agree(&fleet, &AtmConfig::with_seed(4), "field-edge ring");
}

#[test]
fn fast_scans_equal_naive_on_zero_velocity_clusters() {
    // Static aircraft only conflict if their boxes already overlap. With
    // speed_max 0 the reach collapses to the separation itself, so pairs
    // exactly one separation apart sit on the gate's `<=` boundary (a
    // zero-width window exists there) — the hardest edge for the range
    // gate and the grid's containment argument alike.
    let base = AtmConfig {
        speed_min_kts: 0.0,
        speed_max_kts: 0.0,
        ..AtmConfig::with_seed(5)
    };
    let sep = base.separation_nm; // 3.0
    let mut fleet = Vec::new();
    for k in 0..10 {
        let cx = -60.0 + k as f32 * 13.0;
        let cy = 40.0 - k as f32 * 9.0;
        // A cross of five static aircraft, arms exactly one separation out.
        for (dx, dy) in [(0.0, 0.0), (sep, 0.0), (-sep, 0.0), (0.0, sep), (0.0, -sep)] {
            fleet.push(
                Aircraft::at(cx + dx, cy + dy)
                    .with_velocity(0.0, 0.0)
                    .with_altitude(15_000.0 + (k % 3) as f32 * 900.0),
            );
        }
    }
    assert_scans_agree(&fleet, &base, "zero-velocity crosses");
}

// ---------- Sharded scan vs. naive scan (adversarial layouts) ----------

#[test]
fn sharded_scans_equal_naive_on_aircraft_exactly_on_shard_borders() {
    // Shard borders sit at multiples of 2·half_width/S. Pin aircraft
    // *exactly* on those lines (and a partner a hair across each line, in
    // the same band): the clamped floor-cell ownership rule must assign
    // each to exactly one shard, and the halo must still export every
    // cross-border gate passer.
    let base = AtmConfig::with_seed(6);
    let mut rng = SimRng::seed_from_u64(0xB5);
    for shards in [2i64, 3, 4] {
        let cell = 2.0 * base.half_width / shards as f32;
        let mut fleet = Vec::new();
        for k in 1..shards {
            let line = -base.half_width + k as f32 * cell;
            for j in 0..6 {
                let along = rng.range_f32_inclusive(-120.0, 120.0);
                let mut a = arb_aircraft(&mut rng);
                a.x = line; // exactly on a vertical border
                a.y = along;
                a.alt = 10_000.0 + (j % 3) as f32 * 900.0;
                fleet.push(a);
                let mut b = arb_aircraft(&mut rng);
                b.x = line - 0.5; // a hair into the neighboring shard
                b.y = along + 0.5;
                b.alt = a.alt + 100.0;
                fleet.push(b);
                let mut c = arb_aircraft(&mut rng);
                c.x = along; // and the same on a horizontal border
                c.y = line;
                c.alt = a.alt;
                fleet.push(c);
            }
        }
        assert_scans_agree(&fleet, &base, &format!("border lines S={shards}"));
    }
}

#[test]
fn sharded_scans_equal_naive_on_a_four_shard_corner_cluster() {
    // A tight cluster straddling the point where four shards meet (the
    // field center for any even S): every pair in the cluster is a
    // cross-shard pair, many spanning diagonal shards, which only the halo
    // export can see.
    let mut rng = SimRng::seed_from_u64(0xB6);
    let mut fleet = Vec::new();
    for k in 0..40 {
        let mut a = arb_aircraft(&mut rng);
        a.x = rng.range_f32_inclusive(-6.0, 6.0);
        a.y = rng.range_f32_inclusive(-6.0, 6.0);
        a.alt = 12_000.0 + (k % 4) as f32 * 800.0;
        fleet.push(a);
    }
    assert_scans_agree(
        &fleet,
        &AtmConfig::with_seed(7),
        "four-shard corner cluster",
    );
}

#[test]
fn sharded_scans_equal_naive_when_the_whole_fleet_is_in_one_shard() {
    // Degenerate partition: every aircraft inside a single shard cell, so
    // all other shards own nothing (empty bounding boxes, no members) and
    // the one populated shard must behave exactly like the unsharded scan.
    let mut rng = SimRng::seed_from_u64(0xB7);
    let mut fleet = Vec::new();
    for k in 0..50 {
        let mut a = arb_aircraft(&mut rng);
        // For S ∈ {2,3,4} over ±128 nm, [70, 120]² lies strictly inside
        // the top-right shard cell of every grid.
        a.x = rng.range_f32_inclusive(70.0, 120.0);
        a.y = rng.range_f32_inclusive(70.0, 120.0);
        a.alt = 8_000.0 + (k % 5) as f32 * 900.0;
        fleet.push(a);
    }
    assert_scans_agree(&fleet, &AtmConfig::with_seed(8), "one-shard fleet");
}

#[test]
fn sharded_scans_equal_naive_on_random_fleets() {
    let mut rng = SimRng::seed_from_u64(0xB8);
    for case in 0..12 {
        let n = 2 + (rng.next_u64() % 100) as usize;
        let fleet = arb_fleet(&mut rng, n);
        assert_scans_agree(
            &fleet,
            &AtmConfig::with_seed(9),
            &format!("sharded random case {case} (n={n})"),
        );
    }
}

#[test]
fn gpu_modeled_time_is_bit_identical_across_scan_modes() {
    let mut rng = SimRng::seed_from_u64(0xB1);
    for _ in 0..6 {
        let seed = rng.next_u64() % 10_000;
        let n = 50 + (rng.next_u64() % 400) as usize;
        let fleet = Airfield::with_seed(n, seed).aircraft;

        let mut naive = fleet.clone();
        let mut gpu1 = GpuBackend::titan_x_pascal();
        let t_naive = gpu1.detect_resolve(&mut naive, &scan_cfg(seed, ScanMode::Naive));

        for (scan, shards) in [
            (ScanMode::Banded, 1),
            (ScanMode::Grid, 1),
            (ScanMode::Grid, 4),
            (ScanMode::Naive, 2),
        ] {
            let mut fast = fleet.clone();
            let mut gpu2 = GpuBackend::titan_x_pascal();
            let t_fast = gpu2.detect_resolve(&mut fast, &sharded_cfg(seed, scan, shards));

            assert_eq!(
                naive, fast,
                "n={n} seed={seed} scan={scan:?} shards={shards}"
            );
            assert_eq!(
                t_naive, t_fast,
                "modeled GPU time diverged (n={n} seed={seed} scan={scan:?} shards={shards})"
            );
        }
    }
}

#[test]
fn xeon_modeled_time_is_identical_across_scan_modes() {
    let fleet = Airfield::with_seed(600, 77).aircraft;

    let mut naive = fleet.clone();
    let mut x1 = XeonModelBackend::new();
    let t_naive = x1.detect_resolve(&mut naive, &scan_cfg(77, ScanMode::Naive));

    for (scan, shards) in [
        (ScanMode::Banded, 1),
        (ScanMode::Grid, 1),
        (ScanMode::Grid, 4),
        (ScanMode::Naive, 4),
    ] {
        let mut fast = fleet.clone();
        let mut x2 = XeonModelBackend::new();
        let t_fast = x2.detect_resolve(&mut fast, &sharded_cfg(77, scan, shards));

        assert_eq!(naive, fast, "scan={scan:?} shards={shards}");
        assert_eq!(
            t_naive, t_fast,
            "Xeon weighted-op pricing diverged under {scan:?} shards={shards}"
        );
    }
}

// ---------- Parallel sweep harness ----------

#[test]
fn parallel_and_serial_sweeps_produce_identical_series() {
    use atm_bench::harness::Harness;
    use atm_bench::sweep::{sweep_roster, sweep_roster_on, SweepConfig, Task};

    let cfg = SweepConfig {
        ns: vec![150, 300, 450],
        seed: 21,
        reps: 2,
        scan: ScanMode::default(),
        shards: 1,
    };
    for task in [Task::Track, Task::DetectResolve] {
        let serial = sweep_roster(&Roster::paper(), task, &cfg);
        for jobs in [2, 5] {
            let parallel = sweep_roster_on(&Roster::paper(), task, &cfg, &Harness::new(jobs));
            assert_eq!(serial, parallel, "task {task:?}, jobs {jobs}");
        }
    }
}

// ---------- CandidateSource enumerators (unified kernel pipeline) ----------

/// The conformance contract of the `CandidateSource` seam, stated directly
/// on the enumerators instead of through a full detect run: for random
/// fleets, every enumerator must (a) yield a candidate superset of the
/// true gate-passing partner set for every track, and (b) drive the shared
/// kernel to the naive scan's exact result and booked costs — across all
/// four source kinds (naive, banded, grid, sharded) at shard grid sides 1
/// and 4.
#[test]
fn every_candidate_source_covers_the_gate_set_and_matches_the_naive_kernel() {
    use atm_core::batcher::{same_altitude_band, within_critical_reach};
    use atm_core::detect::scan_pairs;
    use atm_core::ScanIndex;
    use sim_clock::OpCounter;
    use std::collections::HashSet;

    let mut rng = SimRng::seed_from_u64(0xC5);
    for case in 0..8 {
        let n = 2 + (rng.next_u64() % 80) as usize;
        let fleet = arb_fleet(&mut rng, n);
        let base = scan_cfg(5, ScanMode::Naive);
        let reach = base.critical_reach_nm();
        let naive_index = ScanIndex::for_config(&fleet, &base);

        for shards in [1usize, 4] {
            for scan in [
                ScanMode::Naive,
                ScanMode::Banded,
                ScanMode::Grid,
                ScanMode::Incremental,
            ] {
                let cfg = sharded_cfg(5, scan, shards);
                let index = ScanIndex::for_config(&fleet, &cfg);
                let label = format!("case {case} (n={n}) scan={scan:?} shards={shards}");

                for (i, track) in fleet.iter().enumerate() {
                    // (a) Superset: every partner that passes both real
                    // gates must be enumerated (self is the only allowed
                    // omission).
                    let cands: HashSet<usize> = index.candidates(i, track, n).collect();
                    for (p, trial) in fleet.iter().enumerate() {
                        if p == i {
                            continue;
                        }
                        let passes =
                            same_altitude_band(track, trial, base.alt_separation_ft, &mut NullSink)
                                && within_critical_reach(track, trial, reach, &mut NullSink);
                        if passes {
                            assert!(
                                cands.contains(&p),
                                "{label}: enumerator dropped gate-passing pair ({i}, {p})"
                            );
                        }
                    }

                    // (b) Kernel equivalence: result and booked costs must
                    // match the naive scan bit for bit.
                    let vel = (track.dx, track.dy);
                    let mut ops_naive = OpCounter::new();
                    let mut ops_fast = OpCounter::new();
                    let r_naive = scan_pairs(&fleet, &naive_index, i, vel, &base, &mut ops_naive);
                    let r_fast = scan_pairs(&fleet, &index, i, vel, &cfg, &mut ops_fast);
                    assert_eq!(
                        r_naive, r_fast,
                        "{label}: scan result diverged at track {i}"
                    );
                    assert_eq!(
                        ops_naive, ops_fast,
                        "{label}: booked costs diverged at track {i}"
                    );
                }
            }
        }
    }
}

// ---------- Incremental rescans (dirty-cell persistence) ----------

/// How a fleet mutates between two rescans of an incremental-engine run.
type Perturb = fn(&mut [Aircraft], usize, &mut SimRng);

/// Drive one persistent backend in [`ScanMode::Incremental`] through
/// `cycles` rescans of a fleet mutated by `perturb` between cycles,
/// checking every rescan byte-for-byte (mutated fleet and stats) against a
/// fresh full-rebuild Grid detect of the same pre-scan fleet.
fn drive_incremental<B: AtmBackend>(
    mut backend: B,
    stats: impl Fn(&B) -> atm_core::detect::DetectStats,
    fleet0: &[Aircraft],
    shards: usize,
    cycles: usize,
    perturb: Perturb,
    label: &str,
) {
    use atm_core::detect::detect_resolve_all;
    let inc = sharded_cfg(7, ScanMode::Incremental, shards);
    let grid = sharded_cfg(7, ScanMode::Grid, shards);
    let mut fleet = fleet0.to_vec();
    let mut rng = SimRng::seed_from_u64(0xD1);
    for cycle in 0..cycles {
        let mut reference = fleet.clone();
        let ref_stats = detect_resolve_all(&mut reference, &grid, &mut NullSink);
        backend.detect_resolve(&mut fleet, &inc);
        assert_eq!(fleet, reference, "{label}: fleet diverged at cycle {cycle}");
        assert_eq!(
            stats(&backend),
            ref_stats,
            "{label}: stats diverged at cycle {cycle}"
        );
        perturb(&mut fleet, cycle, &mut rng);
    }
}

/// [`drive_incremental`] across shard grids {1, 4} and every measured
/// catalog backend (sequential, multicore, simd-soa), each holding its
/// engine alive for the whole move sequence.
fn assert_incremental_tracks_full_rebuild(
    fleet0: &[Aircraft],
    cycles: usize,
    perturb: Perturb,
    what: &str,
) {
    for shards in [1usize, 4] {
        let label = |b: &str| format!("{what}: backend={b} shards={shards}");
        drive_incremental(
            SequentialBackend::new(),
            |b| b.last_detect_stats().unwrap(),
            fleet0,
            shards,
            cycles,
            perturb,
            &label("seq"),
        );
        drive_incremental(
            MulticoreBackend::new(3),
            |b| b.last_detect_stats().unwrap(),
            fleet0,
            shards,
            cycles,
            perturb,
            &label("multicore-3"),
        );
        drive_incremental(
            SimdSoaBackend::new(),
            |b| b.last_detect_stats().unwrap(),
            fleet0,
            shards,
            cycles,
            perturb,
            &label("simd-soa"),
        );
    }
}

#[test]
fn incremental_matches_full_rebuild_over_random_move_sequences() {
    // Per cycle roughly 15% of the fleet drifts; a few of those also hop an
    // altitude bucket or commit a new velocity, so dirty propagation covers
    // position, bucket and velocity key changes at once.
    fn drift(fleet: &mut [Aircraft], _cycle: usize, rng: &mut SimRng) {
        let n = fleet.len();
        for _ in 0..n.div_ceil(7) {
            let j = (rng.next_u64() % n as u64) as usize;
            fleet[j].x += rng.range_f32_inclusive(-8.0, 8.0);
            fleet[j].y += rng.range_f32_inclusive(-8.0, 8.0);
            match rng.next_u64() % 4 {
                0 => fleet[j].alt += rng.range_f32_inclusive(-1_500.0, 1_500.0),
                1 => {
                    fleet[j].dx = rng.range_f32_inclusive(-0.1, 0.1);
                    fleet[j].dy = rng.range_f32_inclusive(-0.1, 0.1);
                }
                _ => {}
            }
        }
    }
    let mut rng = SimRng::seed_from_u64(0xE7);
    for case in 0..3 {
        let n = 40 + (rng.next_u64() % 50) as usize;
        let fleet = arb_fleet(&mut rng, n);
        assert_incremental_tracks_full_rebuild(
            &fleet,
            6,
            drift,
            &format!("random moves case {case} (n={n})"),
        );
    }
}

#[test]
fn incremental_matches_full_rebuild_under_oscillating_cell_boundaries() {
    // Adversarial: half the fleet slams back and forth across cell-scale
    // distances (cells are ~56 nm) while toggling altitude across a bucket
    // edge, so the same aircraft enter and leave cells every single cycle
    // and no cached scan should survive near them.
    fn oscillate(fleet: &mut [Aircraft], cycle: usize, _rng: &mut SimRng) {
        let sign = if cycle.is_multiple_of(2) { 1.0 } else { -1.0 };
        for a in fleet.iter_mut().step_by(2) {
            a.x += sign * 35.0;
            a.alt += sign * 600.0;
        }
    }
    let mut rng = SimRng::seed_from_u64(0xE8);
    let fleet = arb_fleet(&mut rng, 72);
    assert_incremental_tracks_full_rebuild(&fleet, 8, oscillate, "oscillating boundary");
}

// ---------- Scenario corpus (shaped traffic) ----------

#[test]
fn catalog_scenarios_agree_across_all_scan_modes_and_shards() {
    // The whole catalog — crossing flows, merges, stacks, corridors,
    // swarms, dropout traffic, hotspot surges — through the full
    // conformance matrix: every scan mode × shard grid must match the
    // unsharded naive scan bit for bit on every traffic shape, not just
    // on uniform random fleets.
    for scn in Scenario::catalog() {
        let fleet = scn.fleet(72, 31);
        let base = scn.config(31);
        assert_scans_agree(&fleet, &base, &format!("scenario {}", scn.slug()));
    }
}

#[test]
fn incremental_matches_full_rebuild_on_holding_stack_and_hotspot_scenarios() {
    // The two scenarios built to stress the dirty-cell path: holding
    // stacks pile many aircraft per (cell, band) slot, and the hotspot
    // surge crowds one shard corner — then a drifting subset keeps
    // dirtying exactly those crowded cells every cycle.
    fn drift(fleet: &mut [Aircraft], _cycle: usize, rng: &mut SimRng) {
        let n = fleet.len();
        for _ in 0..n.div_ceil(6) {
            let j = (rng.next_u64() % n as u64) as usize;
            fleet[j].x += rng.range_f32_inclusive(-10.0, 10.0);
            fleet[j].y += rng.range_f32_inclusive(-10.0, 10.0);
            if rng.next_u64().is_multiple_of(3) {
                fleet[j].alt += rng.range_f32_inclusive(-1_200.0, 1_200.0);
            }
        }
    }
    for kind in [ScenarioKind::HoldingStacks, ScenarioKind::HotspotSurge] {
        let scn = Scenario::new(kind);
        let fleet = scn.fleet(64, 13);
        assert_incremental_tracks_full_rebuild(
            &fleet,
            6,
            drift,
            &format!("scenario {}", scn.slug()),
        );
    }
}

#[test]
fn incremental_matches_full_rebuild_under_envelope_collapse() {
    // Adversarial: one outlier teleports between the cluster and a point
    // ~40x outside it, so the measured fleet envelope (and with it the
    // whole grid geometry) collapses and re-expands on alternate cycles.
    fn teleport(fleet: &mut [Aircraft], cycle: usize, _rng: &mut SimRng) {
        let far = cycle.is_multiple_of(2);
        fleet[0].x = if far { 5_000.0 } else { 10.0 };
        fleet[0].y = if far { -4_200.0 } else { -10.0 };
    }
    let mut rng = SimRng::seed_from_u64(0xE9);
    let fleet = arb_fleet(&mut rng, 64);
    assert_incremental_tracks_full_rebuild(&fleet, 8, teleport, "envelope collapse");
}
