//! Golden smoke test for the live server: a committed ingest log driven
//! against an in-process `atm-server` must stream byte-identical event
//! lines every run.
//!
//! The same fixtures back the CI smoke job, which runs the *binary*
//! end-to-end (`atm-server serve` + `atm-server drive`) and diffs the
//! streamed events against `server_crossing_events.jsonl`. Regenerate
//! both fixtures with `UPDATE_GOLDEN=1 cargo test --test server_smoke`
//! and review the diff like any other code change.

use atm_core::AircraftUpdate;
use atm_server::proto::updates_to_json;
use atm_server::{write_log, AtmServer, LogEntry, ServerSpec};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use telemetry::{parse_json, JsonValue};

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn assert_matches_golden(name: &str, actual: &str) {
    let path = fixture_dir().join(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, actual).expect("write golden fixture");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); generate it with \
             `UPDATE_GOLDEN=1 cargo test --test server_smoke` and commit it",
            path.display()
        )
    });
    assert_eq!(
        expected, actual,
        "{name} diverged from the committed fixture; if intentional, \
         regenerate with `UPDATE_GOLDEN=1 cargo test --test server_smoke` \
         and review the diff"
    );
}

/// The spec the smoke session runs under — mirrored by the CI job's
/// `atm-server serve` flags.
fn smoke_spec() -> ServerSpec {
    ServerSpec {
        n: 160,
        seed: 7,
        scenario: Some("crossing".to_owned()),
        ..ServerSpec::default()
    }
}

const SMOKE_CYCLES: u64 = 3;

/// The committed ingest log: two crossing-stream nudges before cycle 0
/// and a head-on teleport before cycle 1, all derived from fixed
/// arithmetic so the fixture regenerates byte-identically.
fn smoke_log() -> Vec<LogEntry> {
    let nudge = |round: u64, count: u32| -> Vec<AircraftUpdate> {
        (0..count)
            .map(|i| {
                let k = round * 53 + u64::from(i) * 17;
                AircraftUpdate {
                    id: (k % 160) as u32,
                    x: ((k % 500) as f32) - 250.0,
                    y: ((k % 460) as f32) - 230.0,
                    alt: 9_000.0 + ((k % 31) as f32) * 400.0,
                    dx: 0.02 - ((k % 7) as f32) * 0.005,
                    dy: -0.015 + ((k % 4) as f32) * 0.01,
                }
            })
            .collect()
    };
    vec![
        LogEntry {
            seq: 1,
            cycle: 0,
            updates: nudge(0, 16),
        },
        LogEntry {
            seq: 2,
            cycle: 0,
            updates: nudge(1, 16),
        },
        LogEntry {
            seq: 3,
            cycle: 1,
            updates: nudge(2, 24),
        },
    ]
}

struct Client {
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        Client {
            reader: BufReader::new(TcpStream::connect(addr).unwrap()),
        }
    }

    fn send(&mut self, line: &str) -> JsonValue {
        let mut w = self.reader.get_ref().try_clone().unwrap();
        w.write_all(line.as_bytes()).unwrap();
        w.write_all(b"\n").unwrap();
        parse_json(self.recv_line().trim()).unwrap()
    }

    fn recv_line(&mut self) -> String {
        let mut line = String::new();
        self.reader.read_line(&mut line).unwrap();
        line
    }
}

#[test]
fn streamed_events_match_the_committed_golden() {
    // The ingest log itself is a golden: the CI job feeds this exact file
    // to `atm-server drive`.
    assert_matches_golden("server_crossing_ingest.jsonl", &write_log(&smoke_log()));

    let metrics_path =
        std::env::temp_dir().join(format!("atm_smoke_metrics_{}.json", std::process::id()));
    let spec = ServerSpec {
        metrics_path: Some(metrics_path.to_string_lossy().into_owned()),
        ..smoke_spec()
    };
    let server = AtmServer::bind(spec, "127.0.0.1:0").unwrap();
    let addr = server.local_addr();
    let handle = server.spawn();

    let mut subscriber = Client::connect(addr);
    let r = subscriber.send("{\"verb\":\"subscribe\"}");
    assert_eq!(r.get("subscribed"), Some(&JsonValue::Bool(true)));

    let mut driver = Client::connect(addr);
    let log = smoke_log();
    let mut next = 0usize;
    for cycle in 0..SMOKE_CYCLES {
        while next < log.len() && log[next].cycle <= cycle {
            let request = JsonValue::obj()
                .set("verb", "ingest")
                .set("updates", updates_to_json(&log[next].updates));
            let r = driver.send(&request.to_compact());
            assert_eq!(r.get("ok"), Some(&JsonValue::Bool(true)));
            next += 1;
        }
        let r = driver.send("{\"verb\":\"step\"}");
        assert_eq!(r.get("ok"), Some(&JsonValue::Bool(true)));
    }

    // Collect the subscription stream verbatim until the final cycle
    // event — the exact lines `atm-server drive` writes to its
    // --events-out file.
    let mut events = String::new();
    let mut cycles_seen = 0u64;
    while cycles_seen < SMOKE_CYCLES {
        let line = subscriber.recv_line();
        let v = parse_json(line.trim()).unwrap();
        if v.get("event").and_then(JsonValue::as_str) == Some("cycle") {
            cycles_seen += 1;
        }
        events.push_str(line.trim());
        events.push('\n');
    }
    assert_matches_golden("server_crossing_events.jsonl", &events);

    // Graceful shutdown flushes the final telemetry metrics snapshot.
    driver.send("{\"verb\":\"shutdown\"}");
    handle.join().unwrap();
    let metrics = std::fs::read_to_string(&metrics_path).expect("shutdown flushed metrics");
    assert!(
        metrics.contains("counters"),
        "flushed metrics snapshot carries the counter section"
    );
    std::fs::remove_file(&metrics_path).ok();
}
