//! Deconfliction deep-dive: a dense converging scenario.
//!
//! Builds a deliberately hazardous airspace — several waves of aircraft
//! converging on shared crossing points at matching altitudes — and traces
//! what Batcher detection and rotation resolution do with it, pair by pair.
//! This is the aircraft-to-aircraft deconfliction the paper contrasts with
//! terrain-only deconfliction in related work.
//!
//! ```text
//! cargo run --release --example deconfliction
//! ```

use atm::prelude::*;
use atm_core::batcher::conflict_window;
use atm_core::config::AtmConfig;
use atm_core::detect::detect_resolve_all;
use sim_clock::{NullSink, OpCounter};

/// Waves of aircraft converging on crossing points.
fn converging_fleet() -> Vec<Aircraft> {
    let mut fleet = Vec::new();
    // Wave 1: a head-on corridor at FL100. Gap 40 nm at 0.16 nm/period
    // closing speed: conflicts open at t ≈ 231 periods — inside the
    // 300-period critical window.
    for k in 0..8 {
        let y = -42.0 + 12.0 * k as f32;
        fleet.push(
            Aircraft::at(-20.0, y)
                .with_velocity(0.08, 0.0)
                .with_altitude(10_000.0),
        );
        fleet.push(
            Aircraft::at(20.0, y + 0.5)
                .with_velocity(-0.08, 0.0)
                .with_altitude(10_000.0),
        );
    }
    // Wave 2: crossing traffic climbing through the corridor at the same
    // level, timed to cross while the corridor planes pass.
    for k in 0..3 {
        let x = -24.0 + 24.0 * k as f32;
        fleet.push(
            Aircraft::at(x, -20.0)
                .with_velocity(0.0, 0.07)
                .with_altitude(10_000.0),
        );
    }
    // Wave 3: identical geometry one flight level up — must be ignored by
    // the altitude gate.
    for k in 0..3 {
        let x = -24.0 + 24.0 * k as f32;
        fleet.push(
            Aircraft::at(x, -20.0)
                .with_velocity(0.0, 0.07)
                .with_altitude(14_000.0),
        );
    }
    fleet
}

fn count_critical_pairs(fleet: &[Aircraft], cfg: &AtmConfig) -> usize {
    let mut pairs = 0;
    for i in 0..fleet.len() {
        for j in (i + 1)..fleet.len() {
            if (fleet[i].alt - fleet[j].alt).abs() >= cfg.alt_separation_ft {
                continue;
            }
            if let Some((tmin, _)) = conflict_window(
                &fleet[i],
                (fleet[i].dx, fleet[i].dy),
                &fleet[j],
                cfg.separation_nm,
                cfg.horizon_periods,
                &mut NullSink,
            ) {
                if tmin < cfg.critical_periods {
                    pairs += 1;
                }
            }
        }
    }
    pairs
}

fn main() {
    let cfg = AtmConfig::default();
    let mut fleet = converging_fleet();
    println!(
        "== Deconfliction deep-dive: {} aircraft, converging waves ==\n",
        fleet.len()
    );

    let before = count_critical_pairs(&fleet, &cfg);
    println!("critical conflict pairs before resolution: {before}");
    assert!(before > 0, "the scenario must actually be dangerous");

    let mut ops = OpCounter::new();
    let stats = detect_resolve_all(&mut fleet, &cfg, &mut ops);
    println!("\ndetection/resolution statistics:");
    println!("  pair checks        : {}", stats.pair_checks);
    println!("  critical conflicts : {}", stats.critical_conflicts);
    println!("  rotations attempted: {}", stats.rotations);
    println!("  aircraft resolved  : {}", stats.resolved);
    println!("  unresolved         : {}", stats.unresolved);
    println!("\nabstract op mix of the task:");
    println!(
        "  fp add/mul: {} / {}",
        ops.count(sim_clock::OpClass::FpAdd),
        ops.count(sim_clock::OpClass::FpMul)
    );
    println!("  fp div    : {}", ops.count(sim_clock::OpClass::FpDiv));
    println!("  sfu (trig): {}", ops.count(sim_clock::OpClass::Sfu));
    println!("  mem bytes : {}", ops.total_bytes());

    let after = count_critical_pairs(&fleet, &cfg);
    println!("\ncritical conflict pairs after resolution: {after}");
    println!(
        "reduction: {before} -> {after} ({:.0}% cleared)",
        100.0 * (before - after) as f64 / before as f64
    );

    // The paper's position: complete avoidance is not always possible in
    // dense fields; what matters is that the bulk clears and the rest are
    // flagged for altitude resolution.
    let flagged = fleet.iter().filter(|a| a.col).count();
    println!("aircraft left flagged for altitude resolution: {flagged}");
    assert!(after < before, "resolution must reduce critical pairs");
}
