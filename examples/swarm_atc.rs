//! Swarm ATC: the paper's §7.2 future-work scenario.
//!
//! A mobile ATM center controlling a drone swarm in a small remote area:
//! a 16 nm × 16 nm box, slow low-altitude vehicles, tight separation, and a
//! faster control loop (250 ms periods, 8-period major cycle). Runs the
//! same three ATM tasks on a laptop-class simulated device (the GTX 880M —
//! the paper's "card on a personal laptop") and checks the real-time story
//! still holds at swarm scale.
//!
//! ```text
//! cargo run --release --example swarm_atc
//! ```

use atm::prelude::*;
use atm_core::airfield::Airfield;
use atm_core::config::AtmConfig;

fn swarm_config() -> AtmConfig {
    AtmConfig {
        half_width: 8.0,     // a 16 nm square patch
        speed_min_kts: 10.0, // quadcopter-class speeds…
        speed_max_kts: 80.0, // …up to small fixed-wing UAS
        alt_min_ft: 100.0,
        alt_max_ft: 2_000.0,
        alt_separation_ft: 150.0, // tighter vertical layers
        separation_nm: 0.25,      // protected bubble per drone
        radar_noise_nm: 0.02,
        track_box_half_nm: 0.05,
        period: SimDuration::from_millis(250),
        periods_per_major: 8,     // a 2-second major cycle
        horizon_periods: 1_200.0, // 5 minutes at 250 ms
        critical_periods: 240.0,  // 1 minute
        seed: 0x00D2_05EE,
        ..AtmConfig::default()
    }
}

fn main() {
    let cfg = swarm_config();
    cfg.validate();
    let swarm_sizes = [64usize, 256, 1_024];

    println!("== Swarm ATC on a laptop-class device (GTX 880M) ==\n");
    println!(
        "{:>8} {:>14} {:>14} {:>8} {:>12}",
        "drones", "Task 1", "Tasks 2+3", "misses", "utilization"
    );

    for &n in &swarm_sizes {
        let field = Airfield::new(n, cfg.clone());
        let backend = Box::new(GpuBackend::gtx_880m());
        let mut sim = AtmSimulation::new(field, backend);
        let out = sim.run(4); // 4 major cycles = 8 seconds of swarm flight

        println!(
            "{:>8} {:>14} {:>14} {:>8} {:>11.2}%",
            n,
            out.mean_task1().to_string(),
            out.mean_task23().to_string(),
            out.report.total_misses(),
            out.report.utilization() * 100.0
        );
        assert_eq!(
            out.report.total_misses(),
            0,
            "a laptop GPU must hold the swarm control loop at n={n}"
        );
    }

    println!("\nAll swarm sizes held the 250 ms control loop without a miss.");
    println!("(The paper proposes exactly this as future work: mobile ATC for");
    println!("UAS swarms in remote areas, running on commodity accelerators.)");
}
