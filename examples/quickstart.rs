//! Quickstart: 1000 aircraft on a simulated Titan X (Pascal).
//!
//! Runs one 8-second major cycle of the ATM workload — Task 1 (tracking &
//! correlation) every half second, Tasks 2+3 (collision detection &
//! resolution) in the 16th period — and prints the per-task timing and
//! deadline report.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use atm::prelude::*;

fn main() {
    let n = 1_000;
    let seed = 42;

    println!("== ATM quickstart: {n} aircraft, Titan X (Pascal), 1 major cycle ==\n");

    let backend = Box::new(GpuBackend::titan_x_pascal());
    let mut sim = AtmSimulation::with_field(n, seed, backend);
    let outcome = sim.run(1);

    println!("backend          : {}", outcome.backend_name);
    println!("setup (H2D + SetupFlight kernel): {}", outcome.setup_time);
    println!("mean Task 1      : {}", outcome.mean_task1());
    println!("mean Tasks 2+3   : {}", outcome.mean_task23());
    println!("deadline misses  : {}", outcome.report.total_misses());
    println!("worst period     : {}", outcome.report.worst_period());
    println!(
        "utilization      : {:.3}%",
        outcome.report.utilization() * 100.0
    );

    println!("\nper-task statistics:\n{}", outcome.report);

    let in_conflict = sim.aircraft().iter().filter(|a| a.col).count();
    println!("aircraft still flagged in conflict after the cycle: {in_conflict}");

    assert_eq!(
        outcome.report.total_misses(),
        0,
        "the Titan X must not miss deadlines"
    );
    println!("\nOK: every deadline met.");
}
