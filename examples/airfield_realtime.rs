//! Full real-time run: several major cycles with deadline accounting, on a
//! platform chosen from the command line.
//!
//! Demonstrates the hard-real-time behaviour the paper argues about: the
//! deterministic platforms (GPUs, AP) meet every deadline; the modeled
//! 16-core Xeon starts missing as the fleet grows; the real-thread MIMD
//! backend shows measured, jittery host timing.
//!
//! ```text
//! cargo run --release --example airfield_realtime -- titan 4000 3
//! cargo run --release --example airfield_realtime -- xeon 16000 1
//! cargo run --release --example airfield_realtime -- mimd 2000 1
//! ```
//!
//! Arguments: `<platform> [aircraft] [major_cycles]` where platform is one
//! of `9800gt | 880m | titan | staran | clearspeed | xeon | mimd | seq`.

use atm::prelude::*;

fn backend_for(tag: &str) -> Box<dyn AtmBackend> {
    match tag {
        "9800gt" => Box::new(GpuBackend::geforce_9800_gt()),
        "880m" => Box::new(GpuBackend::gtx_880m()),
        "titan" => Box::new(GpuBackend::titan_x_pascal()),
        "staran" => Box::new(ApBackend::staran()),
        "clearspeed" => Box::new(ApBackend::clearspeed()),
        "xeon" => Box::new(XeonModelBackend::new()),
        "mimd" => Box::new(MimdBackend::host_sized()),
        "seq" => Box::new(SequentialBackend::new()),
        other => {
            eprintln!("unknown platform '{other}'");
            eprintln!("choose: 9800gt | 880m | titan | staran | clearspeed | xeon | mimd | seq");
            std::process::exit(2);
        }
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let tag = args.next().unwrap_or_else(|| "titan".into());
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4_000);
    let cycles: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(2);

    let backend = backend_for(&tag);
    println!(
        "== Real-time ATM run: {} | {n} aircraft | {cycles} major cycle(s) ==\n",
        backend.info().name
    );

    let mut sim = AtmSimulation::with_field(n, 0xA1F1E1D, backend);
    let outcome = sim.run(cycles);

    println!("{}", outcome.report);

    let missed_periods: Vec<_> = outcome
        .report
        .periods()
        .iter()
        .filter(|p| p.missed)
        .map(|p| format!("cycle {} period {}", p.cycle, p.period))
        .collect();
    if missed_periods.is_empty() {
        println!(
            "every deadline met across {} periods",
            outcome.report.periods().len()
        );
    } else {
        println!("missed deadlines in: {}", missed_periods.join(", "));
        for m in outcome.report.misses() {
            println!(
                "  miss: {} at cycle {} period {}",
                m.task, m.cycle, m.period
            );
        }
    }

    let conflicted = sim.aircraft().iter().filter(|a| a.col).count();
    println!("\nfleet state after the run: {conflicted} aircraft flagged in conflict");
}
