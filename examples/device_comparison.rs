//! Device comparison: sweep the aircraft count across all six platforms.
//!
//! Reproduces the qualitative content of the paper's Figures 4–7 at the
//! terminal: per-task mean execution times for the STARAN AP, the
//! ClearSpeed CSX600 emulation, the modeled 16-core Xeon, and the three
//! simulated NVIDIA cards, with curve-shape verdicts from the MATLAB-style
//! fitting crate.
//!
//! ```text
//! cargo run --release --example device_comparison
//! ```

use atm::prelude::*;

fn main() {
    let sweep: Vec<usize> = vec![500, 1_000, 2_000, 4_000];
    let seed = 7;

    println!("== Task timings across platforms (mean per execution) ==\n");
    println!(
        "{:<22} {:>8} {:>16} {:>16} {:>8}",
        "platform", "n", "Task 1", "Tasks 2+3", "misses"
    );

    // One fresh backend per (platform, n) so device clocks don't leak
    // between runs; series collected for curve classification.
    let mut series: Vec<(String, Vec<f64>, Vec<f64>)> = Vec::new();

    for entry in Roster::paper().entries() {
        let mut xs = Vec::new();
        let mut t1s = Vec::new();
        let name = entry.label.to_owned();
        for &n in &sweep {
            let mut sim = AtmSimulation::with_field(n, seed, entry.instantiate());
            let out = sim.run(1);
            println!(
                "{:<22} {:>8} {:>16} {:>16} {:>8}",
                out.backend_name,
                n,
                out.mean_task1().to_string(),
                out.mean_task23().to_string(),
                out.report.total_misses()
            );
            xs.push(n as f64);
            t1s.push(out.mean_task1().as_secs_f64() * 1e3);
        }
        println!();
        series.push((name, xs, t1s));
    }

    println!("== Curve shape of Task 1 (MATLAB-style classification) ==\n");
    for (name, xs, ys) in &series {
        match classify_curve(xs, ys) {
            Ok((class, linear, quad)) => {
                println!("{name:<22} -> {class}");
                println!("    linear fit    : {linear}");
                println!("    quadratic fit : {quad}");
            }
            Err(e) => println!("{name:<22} -> fit failed: {e}"),
        }
    }
}
