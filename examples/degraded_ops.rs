//! Degraded operations: radar dropout + terrain, the extended task set.
//!
//! Exercises two extensions beyond the paper's §6 evaluation:
//!
//! * **radar dropout** — the paper notes that "a radar report may not be
//!   obtained for some aircraft during some periods" but simplifies it
//!   away; here 20 % of reports are lost each period and the tracker must
//!   coast aircraft on their expected positions until reacquisition;
//! * **Task 4, terrain avoidance** — the future-work task (§7.2 /
//!   related-work terrain deconfliction), scheduled every 2 seconds over a
//!   procedurally generated mountain field.
//!
//! Runs the full cyclic executive on the GeForce 9800 GT — the weakest
//! card — to show even it holds the schedule with the extended task set at
//! a realistic load.
//!
//! ```text
//! cargo run --release --example degraded_ops
//! ```

use atm::prelude::*;
use atm_core::airfield::Airfield;

fn main() {
    let n = 2_000;
    let mut cfg = AtmConfig::with_seed(0xDE64ADED);
    cfg.radar_dropout = 0.20;
    cfg.validate();

    let grid = TerrainGrid::generate(99, cfg.half_width, 64, 12_000.0);
    println!(
        "== Degraded ops: {n} aircraft, 20% radar dropout, terrain to {:.0} ft ==\n",
        grid.max_elevation()
    );

    let field = Airfield::new(n, cfg);
    let backend = Box::new(GpuBackend::geforce_9800_gt());
    let mut sim =
        AtmSimulation::new(field, backend).with_terrain(TerrainSchedule::standard(grid.clone()));
    let out = sim.run(2);

    println!("{}", out.report);

    let coasting = sim.aircraft().iter().filter(|a| a.r_match == 0).count();
    println!("aircraft coasting on dead reckoning after the last period: {coasting}");
    let below = sim
        .aircraft()
        .iter()
        .filter(|a| a.alt < grid.elevation_at(a.x, a.y))
        .count();
    println!("aircraft below terrain: {below} (terrain avoidance must keep this at 0)");

    assert_eq!(below, 0, "no aircraft may end up under ground");
    assert_eq!(
        out.report.total_misses(),
        0,
        "even the 9800 GT must hold the extended schedule at {n} aircraft"
    );
    println!("\nOK: extended task set held every deadline under degraded radar.");
}
