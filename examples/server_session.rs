//! A complete live-server session, in one process.
//!
//! ```bash
//! cargo run --release --example server_session
//! ```
//!
//! Boots an `atm-server` on a loopback port with the hotspot scenario,
//! subscribes to its event stream, ingests a couple of surveillance
//! batches while stepping major cycles, tails the conflict events as they
//! arrive, and finally proves the session was deterministic by replaying
//! its own ingest log through the batch engine (DESIGN.md §14).

use atm_core::AircraftUpdate;
use atm_server::proto::{entry_from_json, updates_to_json};
use atm_server::{replay_log, AtmServer, LogEntry, ServerSpec};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use telemetry::{parse_json, JsonValue};

struct Client {
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        Client {
            reader: BufReader::new(TcpStream::connect(addr).unwrap()),
        }
    }

    fn send(&mut self, line: &str) -> JsonValue {
        let mut w = self.reader.get_ref().try_clone().unwrap();
        w.write_all(line.as_bytes()).unwrap();
        w.write_all(b"\n").unwrap();
        self.recv()
    }

    fn recv(&mut self) -> JsonValue {
        let mut line = String::new();
        self.reader.read_line(&mut line).unwrap();
        parse_json(line.trim()).unwrap()
    }
}

fn main() {
    let spec = ServerSpec {
        n: 200,
        seed: 42,
        scenario: Some("hotspot".to_owned()),
        ..ServerSpec::default()
    };
    let server = AtmServer::bind(spec.clone(), "127.0.0.1:0").unwrap();
    let addr = server.local_addr();
    let handle = server.spawn();
    println!("serving {:?} on {addr}", spec.scenario.as_deref().unwrap());

    // One connection tails events, another drives the session.
    let mut subscriber = Client::connect(addr);
    subscriber.send("{\"verb\":\"subscribe\"}");
    let mut driver = Client::connect(addr);

    let status = driver.send("{\"verb\":\"status\"}");
    println!(
        "backend: {}, {} aircraft",
        status.get("backend").and_then(JsonValue::as_str).unwrap(),
        status.get("aircraft").unwrap().to_compact()
    );

    const CYCLES: u64 = 3;
    for cycle in 0..CYCLES {
        // A fresh surveillance batch before every cycle: nudge a dozen
        // aircraft toward the hotspot corner.
        let updates: Vec<AircraftUpdate> = (0..12)
            .map(|i| {
                let k = cycle * 12 + i;
                AircraftUpdate {
                    id: (k * 7 % 200) as u32,
                    x: 300.0 - k as f32 * 3.0,
                    y: 300.0 - k as f32 * 2.0,
                    alt: 12_000.0 + k as f32 * 250.0,
                    dx: -0.02,
                    dy: -0.015,
                }
            })
            .collect();
        let request = JsonValue::obj()
            .set("verb", "ingest")
            .set("updates", updates_to_json(&updates));
        let receipt = driver.send(&request.to_compact());
        println!(
            "cycle {cycle}: ingested batch seq={}",
            receipt.get("seq").unwrap().to_compact()
        );

        driver.send("{\"verb\":\"step\"}");

        // Tail the stream: the cycle report, then its conflict events.
        let event = subscriber.recv();
        let report = event.get("report").unwrap();
        let conflicts = report.get("conflicts").unwrap().to_compact();
        println!(
            "cycle {cycle}: {conflicts} conflicts, fleet {}",
            report
                .get("fleet_hash")
                .and_then(JsonValue::as_str)
                .unwrap()
        );
        let total: u64 = conflicts.parse().unwrap();
        for idx in 0..total {
            let c = subscriber.recv();
            if idx < 3 {
                println!(
                    "  conflict: aircraft {} with {}",
                    c.get("id").unwrap().to_compact(),
                    c.get("col_with").unwrap().to_compact()
                );
            }
        }
        if total > 3 {
            println!("  ... and {} more", total - 3);
        }
    }

    // Pull the ingest log and shut the server down.
    let log_response = driver.send("{\"verb\":\"log\"}");
    let log: Vec<LogEntry> = log_response
        .get("entries")
        .unwrap()
        .as_arr()
        .unwrap()
        .iter()
        .map(|e| entry_from_json(e).unwrap())
        .collect();
    driver.send("{\"verb\":\"shutdown\"}");
    handle.join().unwrap();

    // Determinism: the recorded log replayed through the batch engine
    // reproduces the live session's fleet hashes.
    let replay = replay_log(&spec, &log, CYCLES).unwrap();
    println!(
        "replayed {} cycles from the ingest log:",
        replay.reports.len()
    );
    for r in &replay.reports {
        println!(
            "  cycle {}: {} conflicts, fleet {:016x}",
            r.cycle, r.conflicts, r.fleet_hash
        );
    }
}
