//! # atm — ATM tasks on NVIDIA-like, associative, and multi-core processors
//!
//! A from-scratch Rust reproduction of *"Performance Comparison of NVIDIA
//! accelerators with SIMD, Associative, and Multi-core Processors for Air
//! Traffic Management"* (ICPP '18 Companion).
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`atm_core`] — the ATM tasks (tracking & correlation, Batcher
//!   collision detection, path-rotation resolution), the simulated
//!   airfield, and the ten-entry backend roster (modeled simulators plus
//!   measured host substrates);
//! * [`gpu_sim`] — the deterministic SIMT device simulator with the
//!   GeForce 9800 GT / GTX 880M / Titan X (Pascal) catalog;
//! * [`ap_sim`] — the STARAN associative processor emulator and its
//!   ClearSpeed CSX600 profile;
//! * [`multicore`] — the real-thread MIMD pool and the analytic 16-core
//!   Xeon model;
//! * [`rt_sched`] — the hard-real-time cyclic executive (8 s major cycle,
//!   16 half-second periods, deadline accounting);
//! * [`curvefit`] — MATLAB-style polynomial fitting and goodness-of-fit
//!   statistics for the curve-shape analysis;
//! * [`sim_clock`] — exact simulated time and the cross-architecture cost
//!   accounting interface;
//! * [`telemetry`] — simulated-time spans, counters and histograms with
//!   deterministic Chrome-trace and metrics-JSON exporters.
//!
//! ## Quickstart
//!
//! ```rust
//! use atm::prelude::*;
//!
//! // 1000 aircraft on a simulated Titan X (Pascal), one 8-second major cycle.
//! let backend = Box::new(GpuBackend::titan_x_pascal());
//! let mut sim = AtmSimulation::with_field(1000, 42, backend);
//! let outcome = sim.run(1);
//! assert_eq!(outcome.report.total_misses(), 0);
//! println!("mean Task 1: {}", outcome.mean_task1());
//! ```

pub use ap_sim;
pub use atm_core;
pub use curvefit;
pub use gpu_sim;
pub use multicore;
pub use rt_sched;
pub use sim_clock;
pub use telemetry;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use atm_core::backends::{
        ApBackend, AtmBackend, BackendInfo, GpuBackend, MimdBackend, MulticoreBackend, PlatformId,
        Roster, RosterEntry, SequentialBackend, SimdSoaBackend, TimingKind, XeonModelBackend,
    };
    pub use atm_core::{
        detect_resolve_parallel, fleet_hash, Aircraft, Airfield, AltitudeBands, AtmConfig,
        AtmSimulation, RadarReport, ScanMode, Scenario, ScenarioKind, ScenarioParams, ShardMap,
        ShardedAirfield, ShardedCycleStats, ShardedIndex, SimOutcome, TerrainGrid, TerrainSchedule,
        TerrainTaskConfig,
    };
    pub use curvefit::{classify_curve, fit_poly, CurveClass};
    pub use gpu_sim::{CudaDevice, DeviceSpec, LaunchConfig};
    pub use rt_sched::{CyclicExecutive, MajorCycleSpec};
    pub use sim_clock::{SimDuration, Stopwatch};
    pub use telemetry::Recorder;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_wires_the_workspace_together() {
        let mut sim = AtmSimulation::with_field(200, 1, Box::new(SequentialBackend::new()));
        let out = sim.run(1);
        assert_eq!(out.report.periods().len(), 16);
    }
}
