#!/usr/bin/env python3
"""Cross-run bench regression gate.

Compares per-stage wall-clock times between the previous successful run's
``BENCH_sweep.json`` and the current one, and fails when any stage slowed
down by more than the threshold (default 20%).

Usage:
    check_bench_regression.py BASELINE.json CURRENT.json [--threshold 1.20]

Stages are matched by their ``id``. Stages present on only one side (a
newly added or retired bench stage) are reported but never fail the gate.
A missing or unreadable baseline file is a graceful skip (exit 0): the
first run on a fresh repository has nothing to compare against.

Wall-clock on shared CI runners is noisy; the 20% margin plus the
multi-rep sweep inside each stage keeps false positives rare while still
catching the order-of-magnitude regressions this gate exists for (an
accidentally serialized fan-out, a quadratic scan sneaking back in).
"""

import json
import sys


def load_stages(path):
    with open(path) as f:
        doc = json.load(f)
    return {s["id"]: float(s["wall_ms"]) for s in doc.get("stages", [])}


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("--")]
    threshold = 1.20
    for a in argv[1:]:
        if a.startswith("--threshold"):
            threshold = float(a.split("=", 1)[1] if "=" in a else argv[argv.index(a) + 1])
    if len(args) < 2:
        print(__doc__)
        return 2

    baseline_path, current_path = args[0], args[1]
    try:
        baseline = load_stages(baseline_path)
    except (OSError, ValueError, KeyError) as e:
        print(f"no usable baseline at {baseline_path} ({e}); skipping regression gate")
        return 0
    current = load_stages(current_path)

    failed = []
    for stage_id in sorted(set(baseline) | set(current)):
        if stage_id not in baseline:
            print(f"  {stage_id:<28} new stage ({current[stage_id]:.1f} ms), no baseline")
            continue
        if stage_id not in current:
            print(f"  {stage_id:<28} retired stage (was {baseline[stage_id]:.1f} ms)")
            continue
        old, new = baseline[stage_id], current[stage_id]
        ratio = new / old if old > 0 else float("inf")
        verdict = "REGRESSED" if ratio > threshold else "ok"
        print(f"  {stage_id:<28} {old:9.1f} ms -> {new:9.1f} ms  ({ratio:5.2f}x)  {verdict}")
        if ratio > threshold:
            failed.append(stage_id)

    if failed:
        print(f"\n{len(failed)} stage(s) regressed beyond {threshold:.2f}x: {', '.join(failed)}")
        return 1
    print(f"\nall shared stages within the {threshold:.2f}x budget")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
