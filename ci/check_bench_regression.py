#!/usr/bin/env python3
"""Cross-run bench regression gate.

Compares per-stage wall-clock times between the previous successful run's
``BENCH_sweep.json`` and the current one, and fails when any *gated* stage
slowed down by more than the threshold (default 20%).

Usage:
    check_bench_regression.py BASELINE.json CURRENT.json [--threshold 1.20]

Stages are matched by their ``id``. Each stage carries a ``timing`` tag on
the current side:

* ``"measured"`` — the stage times a real host hot path (the thread-pool
  multicore scan, the SoA gate kernel, the sharded detect, the sequential
  reference, and the ``incremental-detect-muP`` rescan stages). These are
  gated: a slowdown beyond the threshold fails.
* ``"modeled"`` — the stage's wall time is simulator overhead (host time
  spent *producing* modeled results). Reported for visibility, never gated:
  its noise would otherwise drown the measured signal this gate protects.
* absent — legacy stages from before the tag existed; gated, preserving
  the old behaviour against untagged baselines.

A stage may also carry an explicit ``"gate"`` boolean which overrides the
timing heuristic in either direction. The ``scenario-<slug>-detect``
corpus stages set ``"gate": true``: they time a real host hot path (the
grid scan over each generated traffic shape), so they are gated even
though the heuristic alone would already include them — the explicit flag
keeps them gated if their timing tag ever changes. The service-layer
stages do the same: ``engine-step-muP`` (resumable ``AtmEngine`` major
cycles with live ingest between them — the atm-server cycle loop without
the socket) and ``server-ingest`` (parse + decode + apply of a JSON
ingest batch, the per-verb hot path) both carry ``"gate": true``. So do
the ``proc-shard-detect-S`` stages (the halo-exchange wire transport of
``atm-server coordinator``: detect waves crossing localhost TCP through
the frame codec to S-squared worker loops) — serialization overhead on
that path is exactly what this gate should catch. Like any stage, they
never fail on their first appearance (no baseline entry to compare
against).

Stages present on only one side (a newly added or retired bench stage) are
reported but never fail the gate. A missing or unreadable baseline file is
a graceful skip (exit 0): the first run on a fresh repository has nothing
to compare against.

Wall-clock on shared CI runners is noisy; the 20% margin plus the
multi-rep sweep inside each stage keeps false positives rare while still
catching the order-of-magnitude regressions this gate exists for (an
accidentally serialized fan-out, a quadratic scan sneaking back in).
"""

import json
import sys


def load_stages(path):
    with open(path) as f:
        doc = json.load(f)
    return {
        s["id"]: (float(s["wall_ms"]), s.get("timing"), s.get("gate"))
        for s in doc.get("stages", [])
    }


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("--")]
    threshold = 1.20
    for a in argv[1:]:
        if a.startswith("--threshold"):
            threshold = float(a.split("=", 1)[1] if "=" in a else argv[argv.index(a) + 1])
    if len(args) < 2:
        print(__doc__)
        return 2

    baseline_path, current_path = args[0], args[1]
    try:
        baseline = load_stages(baseline_path)
    except (OSError, ValueError, KeyError) as e:
        print(f"no usable baseline at {baseline_path} ({e}); skipping regression gate")
        return 0
    current = load_stages(current_path)

    failed = []
    for stage_id in sorted(set(baseline) | set(current)):
        if stage_id not in baseline:
            ms, _, _ = current[stage_id]
            print(f"  {stage_id:<32} new stage ({ms:.1f} ms), no baseline")
            continue
        if stage_id not in current:
            ms, _, _ = baseline[stage_id]
            print(f"  {stage_id:<32} retired stage (was {ms:.1f} ms)")
            continue
        old, _, _ = baseline[stage_id]
        new, timing, gate = current[stage_id]
        # An explicit per-stage "gate" boolean wins; otherwise fall back to
        # the timing heuristic (everything but "modeled" is gated).
        gated = gate if isinstance(gate, bool) else timing != "modeled"
        ratio = new / old if old > 0 else float("inf")
        if not gated:
            verdict = "not gated (report-only)"
        elif ratio > threshold:
            verdict = "REGRESSED"
        else:
            verdict = "ok"
        print(f"  {stage_id:<32} {old:9.1f} ms -> {new:9.1f} ms  ({ratio:5.2f}x)  {verdict}")
        if gated and ratio > threshold:
            failed.append(stage_id)

    if failed:
        print(f"\n{len(failed)} stage(s) regressed beyond {threshold:.2f}x: {', '.join(failed)}")
        return 1
    print(f"\nall gated stages within the {threshold:.2f}x budget")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
